//! Attack-phase and oracle instrumentation on the process-global
//! telemetry registry.
//!
//! Every attack entry point wraps its hot phase in [`phase`], which
//! counts invocations and rows per `{attack, phase}` pair and times the
//! phase into a log2 histogram — the per-attack solve/train/query
//! breakdown a `MetricsText` scrape or a campaign's snapshot delta
//! shows. Registration goes through the registry's lock, but these are
//! per-*batch* calls (one per `infer_batch`/`train`/oracle round), so
//! the lock never sits on a per-row path.

use fia_telemetry::global;
use std::time::Instant;

/// Runs `f` as phase `phase` of `attack` over `rows` rows, counting and
/// timing it on the global registry.
pub(crate) fn phase<T>(attack: &str, phase: &str, rows: usize, f: impl FnOnce() -> T) -> T {
    let labels = [("attack", attack), ("phase", phase)];
    global()
        .counter_with(
            "fia_attack_phase_total",
            "Attack phase invocations, by attack and phase.",
            &labels,
        )
        .inc();
    global()
        .counter_with(
            "fia_attack_phase_rows_total",
            "Rows processed by attack phases, by attack and phase.",
            &labels,
        )
        .add(rows as u64);
    let hist = global().histogram_with(
        "fia_attack_phase_duration_us",
        "Attack phase wall time, microseconds, by attack and phase.",
        &labels,
    );
    let t0 = Instant::now();
    let out = f();
    hist.record(t0.elapsed().as_micros() as u64);
    out
}

/// Counts one oracle accumulation round of `rows` rows and times it.
pub(crate) fn oracle_round<T>(rows: usize, f: impl FnOnce() -> T) -> T {
    global()
        .counter_with(
            "fia_oracle_queries_total",
            "Prediction rounds issued to the oracle.",
            &[],
        )
        .inc();
    global()
        .counter_with(
            "fia_oracle_rows_total",
            "Query rows submitted to the oracle.",
            &[],
        )
        .add(rows as u64);
    let hist = global().histogram_with(
        "fia_oracle_query_duration_us",
        "Oracle round-trip wall time, microseconds.",
        &[],
    );
    let t0 = Instant::now();
    let out = f();
    hist.record(t0.elapsed().as_micros() as u64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fia_telemetry::global;

    #[test]
    fn phase_counts_rows_and_returns_the_value() {
        let c = global().counter_with(
            "fia_attack_phase_rows_total",
            "Rows processed by attack phases, by attack and phase.",
            &[("attack", "test-attack"), ("phase", "solve")],
        );
        let before = c.get();
        let out = phase("test-attack", "solve", 17, || 42);
        assert_eq!(out, 42);
        assert_eq!(c.get() - before, 17);
    }

    #[test]
    fn oracle_round_counts_queries() {
        let c = global().counter_with(
            "fia_oracle_queries_total",
            "Prediction rounds issued to the oracle.",
            &[],
        );
        let before = c.get();
        oracle_round(8, || ());
        assert_eq!(c.get() - before, 1);
    }
}
