//! Random-guess baselines (Section VI-A).
//!
//! "For ESA and GRNA, we use two baselines that randomly generate samples
//! from (0, 1) according to a Uniform distribution U(0,1) and a Gaussian
//! distribution N(0.5, 0.25²)." For PRA, the baseline picks a prediction
//! path uniformly at random from all root-to-leaf paths.

use crate::metrics::CbrTally;
use fia_linalg::Matrix;
use fia_models::{DecisionTree, TreeNode};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Uniform `U(0, 1)` guesses for `n × d_target` unknown feature values.
pub fn random_guess_uniform(n: usize, d_target: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(n, d_target, |_, _| rng.gen::<f64>())
}

/// Gaussian `N(0.5, 0.25²)` guesses; "this Gaussian distribution can
/// ensure that at least 95% samples are within (0, 1)".
pub fn random_guess_gaussian(n: usize, d_target: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(n, d_target, |_, _| {
        0.5 + 0.25 * fia_tensor::standard_normal(&mut rng)
    })
}

/// PRA baseline: picks one root-to-leaf path uniformly at random and
/// tallies branch correctness on target-feature nodes against the true
/// sample (`x_full` in global feature order).
pub fn random_path_cbr(
    tree: &DecisionTree,
    x_full: &[f64],
    target_indices: &[usize],
    rng: &mut StdRng,
) -> CbrTally {
    let paths = tree.prediction_paths();
    let path = &paths[rng.gen_range(0..paths.len())];
    branch_tally_along_path(tree, path, x_full, target_indices)
}

/// Tallies, along `path`, how many target-feature branch decisions agree
/// with what the ground-truth feature values would have chosen.
pub fn branch_tally_along_path(
    tree: &DecisionTree,
    path: &[usize],
    x_full: &[f64],
    target_indices: &[usize],
) -> CbrTally {
    let mut tally = CbrTally::default();
    for w in path.windows(2) {
        let (node, child) = (w[0], w[1]);
        if let TreeNode::Internal { feature, threshold } = &tree.nodes()[node] {
            if target_indices.binary_search(feature).is_ok() {
                let path_went_left = child == 2 * node + 1;
                let truth_goes_left = x_full[*feature] <= *threshold;
                tally.total += 1;
                if path_went_left == truth_goes_left {
                    tally.correct += 1;
                }
            }
        }
    }
    tally
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_in_range_and_deterministic() {
        let a = random_guess_uniform(50, 4, 9);
        assert!(a.as_slice().iter().all(|&v| (0.0..1.0).contains(&v)));
        let b = random_guess_uniform(50, 4, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn gaussian_mostly_in_unit_interval() {
        let g = random_guess_gaussian(2000, 1, 3);
        let inside = g
            .as_slice()
            .iter()
            .filter(|&&v| (0.0..1.0).contains(&v))
            .count();
        let frac = inside as f64 / 2000.0;
        assert!(frac > 0.93, "fraction inside (0,1): {frac}");
        let mean: f64 = g.as_slice().iter().sum::<f64>() / 2000.0;
        assert!((mean - 0.5).abs() < 0.03);
    }

    #[test]
    fn branch_tally_counts_only_target_nodes() {
        use fia_models::TreeNode::*;
        // Root on feature 0 (adversary), child on feature 1 (target).
        let nodes = vec![
            Internal {
                feature: 0,
                threshold: 0.5,
            },
            Internal {
                feature: 1,
                threshold: 0.5,
            },
            Leaf { label: 1 },
            Leaf { label: 0 },
            Leaf { label: 1 },
            Absent,
            Absent,
        ];
        let tree = DecisionTree::from_nodes(nodes, 2, 2);
        // Path root → left → left; truth x = (0.2, 0.8): target node says
        // left (x1 ≤ 0.5) but truth goes right → incorrect.
        let tally = branch_tally_along_path(&tree, &[0, 1, 3], &[0.2, 0.8], &[1]);
        assert_eq!(tally.total, 1);
        assert_eq!(tally.correct, 0);
        // Same path, truth x1 = 0.3 → correct.
        let tally = branch_tally_along_path(&tree, &[0, 1, 3], &[0.2, 0.3], &[1]);
        assert_eq!(tally.correct, 1);
    }

    #[test]
    fn random_path_cbr_runs() {
        use fia_models::TreeNode::*;
        let nodes = vec![
            Internal {
                feature: 0,
                threshold: 0.5,
            },
            Leaf { label: 0 },
            Leaf { label: 1 },
        ];
        let tree = DecisionTree::from_nodes(nodes, 1, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let tally = random_path_cbr(&tree, &[0.3], &[0], &mut rng);
        // Root is a target node on either path.
        assert_eq!(tally.total, 1);
    }
}
