//! Criterion benches for the substrate layers: linear algebra kernels,
//! autograd throughput, model training/prediction, and the design-choice
//! ablations from DESIGN.md §6 (pinv-vs-ridge, distillation capacity).

use criterion::{criterion_group, criterion_main, Criterion};
use fia_bench::experiments::ablation;
use fia_bench::profiles::ExperimentConfig;
use fia_linalg::{lstsq, pinv, svd, Matrix};
use fia_models::{DecisionTree, LogisticRegression, LrConfig, PredictProba, TreeConfig};
use fia_tensor::{Params, Tape};
use rand::{rngs::StdRng, SeedableRng};

fn linalg_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("linalg");
    let a = Matrix::from_fn(40, 12, |i, j| ((i * 13 + j * 7) % 17) as f64 - 8.0);
    g.bench_function("svd_40x12", |b| b.iter(|| svd(std::hint::black_box(&a))));
    g.bench_function("pinv_40x12", |b| b.iter(|| pinv(std::hint::black_box(&a))));
    let rhs: Vec<f64> = (0..40).map(|i| (i as f64 * 0.37).sin()).collect();
    g.bench_function("lstsq_40x12", |b| {
        b.iter(|| lstsq(std::hint::black_box(&a), std::hint::black_box(&rhs)))
    });
    let m = Matrix::from_fn(128, 128, |i, j| ((i + j) % 9) as f64 * 0.1);
    g.bench_function("matmul_128", |b| b.iter(|| m.matmul(std::hint::black_box(&m))));
    g.finish();
}

fn autograd_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("autograd");
    let mut rng = StdRng::seed_from_u64(1);
    let mut params = Params::new();
    let w1 = params.insert(fia_tensor::he_normal(32, 64, &mut rng));
    let b1 = params.insert(Matrix::zeros(1, 64));
    let w2 = params.insert(fia_tensor::he_normal(64, 8, &mut rng));
    let b2 = params.insert(Matrix::zeros(1, 8));
    let x = fia_tensor::uniform_matrix(64, 32, 0.0, 1.0, &mut rng);
    let t = fia_tensor::uniform_matrix(64, 8, 0.0, 1.0, &mut rng);
    g.bench_function("mlp_fwd_bwd_64x32", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let xv = tape.input(x.clone());
            let w1v = tape.param(&params, w1);
            let b1v = tape.param(&params, b1);
            let h = tape.matmul(xv, w1v);
            let h = tape.add_row_broadcast(h, b1v);
            let h = tape.relu(h);
            let w2v = tape.param(&params, w2);
            let b2v = tape.param(&params, b2);
            let z = tape.matmul(h, w2v);
            let z = tape.add_row_broadcast(z, b2v);
            let tv = tape.input(t.clone());
            let loss = tape.mse_loss(z, tv);
            tape.backward(loss);
            std::hint::black_box(tape.param_grads())
        })
    });
    g.finish();
}

fn model_training(c: &mut Criterion) {
    let mut g = c.benchmark_group("models");
    g.sample_size(10);
    let cfg = fia_data::SynthConfig {
        n_samples: 300,
        n_features: 12,
        n_informative: 8,
        n_redundant: 2,
        n_classes: 3,
        class_sep: 1.5,
        redundant_noise: 0.3,
        flip_y: 0.01,
        shuffle_features: true,
        seed: 3,
    };
    let ds = fia_data::normalize_dataset(&fia_data::make_classification(&cfg)).0;
    g.bench_function("lr_fit_300x12", |b| {
        b.iter(|| {
            LogisticRegression::fit(
                std::hint::black_box(&ds),
                &LrConfig {
                    epochs: 5,
                    ..LrConfig::default()
                },
            )
        })
    });
    g.bench_function("tree_fit_300x12_depth5", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(9);
            DecisionTree::fit(std::hint::black_box(&ds), &TreeConfig::paper_dt(), &mut rng)
        })
    });
    let model = LogisticRegression::fit(&ds, &LrConfig::default());
    g.bench_function("lr_predict_300", |b| {
        b.iter(|| model.predict_proba(std::hint::black_box(&ds.features)))
    });
    g.finish();
}

fn design_ablations(c: &mut Criterion) {
    let mut cfg = ExperimentConfig::smoke();
    cfg.dtarget_grid = vec![0.3];
    let mut g = c.benchmark_group("design_ablations");
    g.sample_size(10);
    g.bench_function("ablation_pinv_vs_ridge", |b| {
        b.iter(|| std::hint::black_box(ablation::run_pinv_vs_ridge(&cfg, 1e-6)))
    });
    g.bench_function("ablation_distill_sweep", |b| {
        b.iter(|| std::hint::black_box(ablation::run_distill_sweep(&cfg)))
    });
    g.finish();
}

criterion_group! {
    name = substrates;
    config = Criterion::default().sample_size(20);
    targets = linalg_kernels, autograd_throughput, model_training, design_ablations
}
criterion_main!(substrates);
