//! Substrate benches: linear algebra kernels (including the blocked and
//! parallel multiplies), autograd throughput, model training/prediction,
//! and the design-choice ablations from DESIGN.md §6.

use fia_bench::experiments::ablation;
use fia_bench::harness::Harness;
use fia_bench::profiles::ExperimentConfig;
use fia_linalg::{lstsq, par_matmul, pinv, svd, Matrix};
use fia_models::{DecisionTree, LogisticRegression, LrConfig, PredictProba, TreeConfig};
use fia_tensor::{Params, Tape};
use rand::{rngs::StdRng, SeedableRng};

fn linalg_kernels(h: &mut Harness) {
    let a = Matrix::from_fn(40, 12, |i, j| ((i * 13 + j * 7) % 17) as f64 - 8.0);
    h.bench("svd_40x12", || svd(std::hint::black_box(&a)));
    h.bench("pinv_40x12", || pinv(std::hint::black_box(&a)));
    let rhs: Vec<f64> = (0..40).map(|i| (i as f64 * 0.37).sin()).collect();
    h.bench("lstsq_40x12", || {
        lstsq(std::hint::black_box(&a), std::hint::black_box(&rhs))
    });
    let m = Matrix::from_fn(128, 128, |i, j| ((i + j) % 9) as f64 * 0.1);
    h.bench("matmul_128", || m.matmul(std::hint::black_box(&m)));
    let big = Matrix::from_fn(384, 384, |i, j| ((i * 7 + j) % 11) as f64 * 0.1);
    h.bench("matmul_blocked_384", || {
        big.matmul_blocked(std::hint::black_box(&big), 64)
    });
    h.bench("par_matmul_384", || {
        par_matmul(std::hint::black_box(&big), std::hint::black_box(&big))
    });
    let bt = big.transpose();
    h.bench("matmul_transposed_384", || {
        big.matmul_transposed(std::hint::black_box(&bt))
    });
}

fn autograd_throughput(h: &mut Harness) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut params = Params::new();
    let w1 = params.insert(fia_tensor::he_normal(32, 64, &mut rng));
    let b1 = params.insert(Matrix::zeros(1, 64));
    let w2 = params.insert(fia_tensor::he_normal(64, 8, &mut rng));
    let b2 = params.insert(Matrix::zeros(1, 8));
    let x = fia_tensor::uniform_matrix(64, 32, 0.0, 1.0, &mut rng);
    let t = fia_tensor::uniform_matrix(64, 8, 0.0, 1.0, &mut rng);
    h.bench("mlp_fwd_bwd_64x32", || {
        let mut tape = Tape::new();
        let xv = tape.input(x.clone());
        let w1v = tape.param(&params, w1);
        let b1v = tape.param(&params, b1);
        let hid = tape.matmul(xv, w1v);
        let hid = tape.add_row_broadcast(hid, b1v);
        let hid = tape.relu(hid);
        let w2v = tape.param(&params, w2);
        let b2v = tape.param(&params, b2);
        let z = tape.matmul(hid, w2v);
        let z = tape.add_row_broadcast(z, b2v);
        let tv = tape.input(t.clone());
        let loss = tape.mse_loss(z, tv);
        tape.backward(loss);
        std::hint::black_box(tape.param_grads())
    });
}

fn model_training(h: &mut Harness) {
    let cfg = fia_data::SynthConfig {
        n_samples: 300,
        n_features: 12,
        n_informative: 8,
        n_redundant: 2,
        n_classes: 3,
        class_sep: 1.5,
        redundant_noise: 0.3,
        flip_y: 0.01,
        shuffle_features: true,
        seed: 3,
    };
    let ds = fia_data::normalize_dataset(&fia_data::make_classification(&cfg)).0;
    h.bench("lr_fit_300x12", || {
        LogisticRegression::fit(
            std::hint::black_box(&ds),
            &LrConfig {
                epochs: 5,
                ..LrConfig::default()
            },
        )
    });
    h.bench("tree_fit_300x12_depth5", || {
        let mut rng = StdRng::seed_from_u64(9);
        DecisionTree::fit(std::hint::black_box(&ds), &TreeConfig::paper_dt(), &mut rng)
    });
    let model = LogisticRegression::fit(&ds, &LrConfig::default());
    h.bench("lr_predict_300", || {
        model.predict_proba(std::hint::black_box(&ds.features))
    });
}

fn design_ablations(h: &mut Harness) {
    let mut cfg = ExperimentConfig::smoke();
    cfg.dtarget_grid = vec![0.3];
    h.bench("ablation_pinv_vs_ridge", || {
        ablation::run_pinv_vs_ridge(&cfg, 1e-6)
    });
    h.bench("ablation_distill_sweep", || {
        ablation::run_distill_sweep(&cfg)
    });
}

fn main() {
    let mut h = Harness::new("substrates", 10, 2);
    linalg_kernels(&mut h);
    autograd_throughput(&mut h);
    model_training(&mut h);
    design_ablations(&mut h);
}
