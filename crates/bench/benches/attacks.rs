//! Attack-layer benches — the headline measurement is batched ESA vs
//! looping the single-record API over 1,000 accumulated queries, plus
//! smoke-sized runs of the per-figure experiments. Results (including
//! the `esa_batch_speedup` ratio) land in `BENCH_attacks.json`.

use fia_bench::experiments::{fig5, fig6, table3};
use fia_bench::harness::Harness;
use fia_bench::profiles::ExperimentConfig;
use fia_core::{Attack, AttackEngine, EqualitySolvingAttack, QueryBatch};
use fia_linalg::Matrix;
use fia_models::{LogisticRegression, PredictProba};

fn bench_cfg() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::smoke();
    cfg.dtarget_grid = vec![0.3];
    cfg
}

/// An ESA deployment with `n` accumulated queries. `c == 2` builds the
/// credit-card-shaped binary model (the paper's primary dataset), larger
/// `c` the drive-diagnosis-shaped multiclass one.
fn esa_fixture(
    n: usize,
    d: usize,
    c: usize,
) -> (LogisticRegression, Vec<usize>, Vec<usize>, QueryBatch) {
    let mut state = 0x5EEDu64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    };
    let w_cols = if c == 2 { 1 } else { c };
    let w = Matrix::from_fn(d, w_cols, |_, _| next());
    let model = LogisticRegression::from_parameters(w, vec![0.0; w_cols], c);
    let adv: Vec<usize> = (0..d).filter(|f| f % 3 != 0).collect();
    let target: Vec<usize> = (0..d).filter(|f| f % 3 == 0).collect();

    let mut x_adv = Matrix::zeros(n, adv.len());
    let mut x_full = Matrix::zeros(n, d);
    for i in 0..n {
        for j in 0..d {
            x_full[(i, j)] = 0.5 + 0.49 * next();
        }
        for (k, &f) in adv.iter().enumerate() {
            x_adv[(i, k)] = x_full[(i, f)];
        }
    }
    let confidences = model.predict_proba(&x_full);
    (model, adv, target, QueryBatch::new(x_adv, confidences))
}

/// Asserts the batched estimates agree with the per-record wrapper.
fn check_consistency(attack: &EqualitySolvingAttack<'_>, batch: &QueryBatch) {
    let batched = attack.infer_batch(batch);
    for i in 0..batch.len() {
        let single = attack.infer(batch.x_adv.row(i), batch.confidences.row(i));
        for (k, &s) in single.iter().enumerate() {
            assert!(
                (batched.estimates[(i, k)] - s).abs() < 1e-9,
                "batched/looped mismatch at ({i}, {k})"
            );
        }
    }
}

fn main() {
    let mut h = Harness::new("attacks", 30, 5);
    let n = 1_000;
    let engine = AttackEngine::new();

    // ---- Headline: batched vs looping the single-record API over the
    // paper's primary (credit-card-shaped, binary) deployment. This is
    // the acceptance bench of the engine refactor: the batched path must
    // be ≥ 4× faster than 1,000 calls through `Attack::infer_one`.
    let (model, adv, target, batch) = esa_fixture(n, 23, 2);
    let attack = EqualitySolvingAttack::new(&model, &adv, &target);
    check_consistency(&attack, &batch);

    let looped = h.bench("esa_looped_single_record_1000", || {
        let mut out = Matrix::zeros(n, target.len());
        for i in 0..n {
            let est = attack.infer_one(batch.x_adv.row(i), batch.confidences.row(i));
            out.row_mut(i).copy_from_slice(&est);
        }
        out
    });
    let legacy = h.bench("esa_looped_legacy_infer_1000", || {
        let mut out = Matrix::zeros(n, target.len());
        for i in 0..n {
            let est = attack.infer(batch.x_adv.row(i), batch.confidences.row(i));
            out.row_mut(i).copy_from_slice(&est);
        }
        out
    });
    let engine_run = h.bench("esa_infer_batch_1000", || engine.run(&attack, &batch));
    let speedup = looped.median_ns / engine_run.median_ns;
    h.metric("esa_batch_speedup", speedup);
    h.metric(
        "esa_batch_vs_legacy_infer",
        legacy.median_ns / engine_run.median_ns,
    );
    // Wall-clock ratios are noisy on shared CI runners; setting
    // FIA_BENCH_NO_ASSERT turns the acceptance bar into a report-only
    // metric there while keeping it enforced for local/dev runs.
    if std::env::var_os("FIA_BENCH_NO_ASSERT").is_none() {
        assert!(
            speedup >= 4.0,
            "batched ESA speedup {speedup:.2}x below the 4x acceptance bar"
        );
    }

    // ---- Secondary shape: drive-diagnosis-like multiclass (11 classes,
    // 48 features) — flop-bound, so the single-core gap is smaller; on a
    // multi-core runner the engine additionally stripes rows.
    let (model_mc, adv_mc, target_mc, batch_mc) = esa_fixture(n, 48, 11);
    let attack_mc = EqualitySolvingAttack::new(&model_mc, &adv_mc, &target_mc);
    check_consistency(&attack_mc, &batch_mc);
    let looped_mc = h.bench("esa_multiclass_looped_1000", || {
        let mut out = Matrix::zeros(n, target_mc.len());
        for i in 0..n {
            let est = attack_mc.infer_one(batch_mc.x_adv.row(i), batch_mc.confidences.row(i));
            out.row_mut(i).copy_from_slice(&est);
        }
        out
    });
    let batch_run_mc = h.bench("esa_multiclass_infer_batch_1000", || {
        engine.run(&attack_mc, &batch_mc)
    });
    h.metric(
        "esa_multiclass_batch_speedup",
        looped_mc.median_ns / batch_run_mc.median_ns,
    );

    // ---- Smoke-sized experiment sweeps (shape-preserving workloads).
    let cfg = bench_cfg();
    let mut smoke = Harness::new("experiments", 5, 1);
    smoke.bench("fig5_esa_sweep", || fig5::run(&cfg));
    smoke.bench("fig6_pra_sweep", || fig6::run(&cfg));
    smoke.bench("table3_ablation", || table3::run(&cfg));

    for r in smoke.results() {
        // Fold the experiment rows into the same JSON document.
        h.metric(
            &format!("{}_median_ms", r.name.replace('/', "_")),
            r.median_ms(),
        );
    }
    h.write_json("BENCH_attacks.json");
}
