//! Criterion benches for the attack experiments — one group per
//! table/figure (smoke-sized workloads; the repro binary regenerates the
//! full tables).

use criterion::{criterion_group, criterion_main, Criterion};
use fia_bench::experiments::{fig10, fig11, fig5, fig6, fig7, fig8, fig9, table3};
use fia_bench::profiles::ExperimentConfig;
use fia_data::PaperDataset;

fn bench_cfg() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::smoke();
    cfg.dtarget_grid = vec![0.3];
    cfg
}

fn fig5_esa(c: &mut Criterion) {
    let cfg = bench_cfg();
    c.bench_function("fig5_esa_sweep", |b| {
        b.iter(|| std::hint::black_box(fig5::run(&cfg)))
    });
}

fn fig6_pra(c: &mut Criterion) {
    let cfg = bench_cfg();
    c.bench_function("fig6_pra_sweep", |b| {
        b.iter(|| std::hint::black_box(fig6::run(&cfg)))
    });
}

fn table3_ablation(c: &mut Criterion) {
    let cfg = bench_cfg();
    c.bench_function("table3_ablation", |b| {
        b.iter(|| std::hint::black_box(table3::run(&cfg)))
    });
}

fn fig7_grna(c: &mut Criterion) {
    let cfg = bench_cfg();
    let mut g = c.benchmark_group("fig7_grna");
    g.sample_size(10);
    for model in fig7::TargetModel::all() {
        g.bench_function(model.label(), |b| {
            b.iter(|| {
                std::hint::black_box(fig7::measure_point(
                    &cfg,
                    PaperDataset::CreditCard,
                    model,
                    0.3,
                ))
            })
        });
    }
    g.finish();
}

fn fig8_grna_rf(c: &mut Criterion) {
    let cfg = bench_cfg();
    let mut g = c.benchmark_group("fig8_grna_rf");
    g.sample_size(10);
    g.bench_function("credit_card_cbr", |b| {
        b.iter(|| {
            std::hint::black_box(fig8::measure_point(&cfg, PaperDataset::CreditCard, 0.3))
        })
    });
    g.finish();
}

fn fig9_npred(c: &mut Criterion) {
    let cfg = bench_cfg();
    let mut g = c.benchmark_group("fig9_npred");
    g.sample_size(10);
    for nf in [0.1, 0.5] {
        g.bench_function(format!("n={:.0}%", nf * 100.0), |b| {
            b.iter(|| {
                std::hint::black_box(fig9::measure_point(
                    &cfg,
                    PaperDataset::Synthetic1,
                    nf,
                    0.3,
                ))
            })
        });
    }
    g.finish();
}

fn fig10_corr(c: &mut Criterion) {
    let cfg = bench_cfg();
    let mut g = c.benchmark_group("fig10_corr");
    g.sample_size(10);
    g.bench_function("bank_lr_panel", |b| {
        b.iter(|| std::hint::black_box(fig10::panel_lr(&cfg)))
    });
    g.finish();
}

fn fig11_defenses(c: &mut Criterion) {
    let cfg = bench_cfg();
    let mut g = c.benchmark_group("fig11_defenses");
    g.sample_size(10);
    g.bench_function("round_esa", |b| {
        b.iter(|| std::hint::black_box(fig11::run_rounding_esa(&cfg)))
    });
    g.bench_function("dropout_grna", |b| {
        b.iter(|| std::hint::black_box(fig11::run_dropout(&cfg)))
    });
    g.finish();
}

criterion_group! {
    name = attacks;
    config = Criterion::default().sample_size(10);
    targets = fig5_esa, fig6_pra, table3_ablation, fig7_grna, fig8_grna_rf,
              fig9_npred, fig10_corr, fig11_defenses
}
criterion_main!(attacks);
