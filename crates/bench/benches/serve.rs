//! Serving-boundary benches — requests/sec at 1/4/8 closed-loop client
//! threads against the live TCP service, batched (coalescer on) vs
//! unbatched (coalescer off). Results land in `BENCH_serve.json`.
//!
//! Both servers simulate the same fixed per-round secure-computation
//! cost (`round_cost`): a real VFL deployment pays a protocol round
//! trip (secure aggregation / HE) per joint prediction, which the
//! in-the-clear simulation would otherwise hide. The coalescer's whole
//! job is amortizing that cost across queued queries, so the headline
//! metric is `rps_batched_8t / rps_unbatched_8t` — the acceptance bar
//! is ≥ 2×, report-only under `FIA_BENCH_NO_ASSERT=1` (shared CI
//! runners), enforced locally.

use fia_bench::harness::Harness;
use fia_linalg::Matrix;
use fia_models::LogisticRegression;
use fia_serve::{LoadConfig, PredictionServer, ServeConfig};
use fia_vfl::{VerticalPartition, VflSystem};
use std::sync::Arc;
use std::time::Duration;

/// Credit-card-shaped deployment (23 features, binary LR) with a stored
/// prediction set big enough that index traffic never repeats within a
/// round.
fn deployment() -> Arc<VflSystem<LogisticRegression>> {
    let d = 23;
    let mut state = 0x5EEDu64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    };
    let w = Matrix::from_fn(d, 1, |_, _| next());
    let model = LogisticRegression::from_parameters(w, vec![0.0], 2);
    let global = Matrix::from_fn(512, d, |_, _| 0.5 + 0.49 * next());
    let partition = VerticalPartition::contiguous(&[16, 7]);
    Arc::new(VflSystem::from_global(model, partition, &global))
}

/// The simulated secure-protocol round cost both servers pay.
const ROUND_COST: Duration = Duration::from_micros(300);

fn config(coalesce: bool) -> ServeConfig {
    ServeConfig {
        batch_cap: 32,
        // Closed-loop clients can never fill the row cap (every client
        // has exactly one request in flight), so the deadline is kept
        // short: rounds close on the greedy drain, which already holds
        // everything that queued behind the previous round.
        batch_deadline: Duration::from_micros(100),
        coalesce,
        round_cost: ROUND_COST,
        ..ServeConfig::default()
    }
}

/// Runs one load scenario and returns (rps, mean batch fill).
fn scenario(
    system: &Arc<VflSystem<LogisticRegression>>,
    coalesce: bool,
    threads: usize,
) -> (f64, f64) {
    let server = PredictionServer::spawn(
        Arc::clone(system),
        Arc::new(fia_defense::DefensePipeline::new()),
        config(coalesce),
    )
    .expect("bind ephemeral port");
    // Warmup: let connection threads and the batcher reach steady state.
    let _ = fia_serve::run_load(
        server.addr(),
        &LoadConfig {
            threads,
            requests_per_thread: 25,
            rows_per_request: 1,
        },
    )
    .expect("warmup load");
    let report = fia_serve::run_load(
        server.addr(),
        &LoadConfig {
            threads,
            requests_per_thread: 250,
            rows_per_request: 1,
        },
    )
    .expect("timed load");
    let fill = server.metrics().mean_batch_fill;
    server.shutdown();
    (report.rps, fill)
}

fn main() {
    let mut h = Harness::new("serve", 1, 0);
    let system = deployment();

    let mut speedup_8t = 0.0;
    for &threads in &[1usize, 4, 8] {
        let (rps_unbatched, _) = scenario(&system, false, threads);
        let (rps_batched, fill) = scenario(&system, true, threads);
        h.metric(&format!("rps_unbatched_{threads}t"), rps_unbatched);
        h.metric(&format!("rps_batched_{threads}t"), rps_batched);
        h.metric(&format!("batched_fill_{threads}t"), fill);
        let speedup = rps_batched / rps_unbatched;
        h.metric(&format!("batched_speedup_{threads}t"), speedup);
        if threads == 8 {
            speedup_8t = speedup;
        }
    }

    // Wall-clock ratios are noisy on shared CI runners; FIA_BENCH_NO_ASSERT
    // turns the acceptance bar into a report-only metric there while
    // keeping it enforced for local/dev runs.
    if std::env::var_os("FIA_BENCH_NO_ASSERT").is_none() {
        assert!(
            speedup_8t >= 2.0,
            "batched server speedup {speedup_8t:.2}x at 8 threads is below the 2x acceptance bar"
        );
    }
    h.write_json("BENCH_serve.json");
}
