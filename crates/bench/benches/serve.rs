//! Serving-boundary benches.
//!
//! Section 1 (`BENCH_serve.json`, the PR-2 baseline): requests/sec at
//! 1/4/8 closed-loop client threads against the live TCP service,
//! batched (coalescer on) vs unbatched (coalescer off).
//!
//! Section 2 (`BENCH_serve_pool.json`, the pool baseline): the same
//! 8-thread closed-loop traffic against 1/2/4 backend replicas with
//! sharded dispatch, cold (cache off) and warm (released-score cache
//! fully resident). The headline metric is
//! `pool_speedup_4r_warm` — 4 replicas + warm cache vs the PR-2
//! single-batcher server under the *same* simulated secure-round cost —
//! with an acceptance bar of ≥ 2×.
//!
//! All servers simulate the same fixed per-round secure-computation
//! cost (`round_cost`): a real VFL deployment pays a protocol round
//! trip (secure aggregation / HE) per joint prediction, which the
//! in-the-clear simulation would otherwise hide. The coalescer
//! amortizes that cost across queued queries, replicas pay it
//! concurrently, and cache hits skip it entirely. Wall-clock ratios are
//! noisy on shared runners, so the acceptance bars are report-only
//! under `FIA_BENCH_NO_ASSERT=1` (CI) and enforced locally.
//!
//! Section 3 (also `BENCH_serve_pool.json`): `telemetry_overhead_frac`
//! prices the fia-telemetry instrumentation — the same pooled scenario
//! with every registry recording vs the recording flag off — with a
//! ≤ 3% acceptance bar.

use fia_bench::harness::Harness;
use fia_linalg::Matrix;
use fia_models::LogisticRegression;
use fia_serve::{LoadConfig, OpenLoadConfig, PredictionServer, ServeConfig};
use fia_vfl::{VerticalPartition, VflSystem};
use std::sync::Arc;
use std::time::Duration;

/// Credit-card-shaped deployment (23 features, binary LR) with a stored
/// prediction set big enough that index traffic never repeats within a
/// round.
fn deployment() -> Arc<VflSystem<LogisticRegression>> {
    let d = 23;
    let mut state = 0x5EEDu64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    };
    let w = Matrix::from_fn(d, 1, |_, _| next());
    let model = LogisticRegression::from_parameters(w, vec![0.0], 2);
    let global = Matrix::from_fn(512, d, |_, _| 0.5 + 0.49 * next());
    let partition = VerticalPartition::contiguous(&[16, 7]);
    Arc::new(VflSystem::from_global(model, partition, &global))
}

/// The simulated secure-protocol round cost both servers pay.
const ROUND_COST: Duration = Duration::from_micros(300);

fn config(coalesce: bool) -> ServeConfig {
    ServeConfig {
        batch_cap: 32,
        // Closed-loop clients can never fill the row cap (every client
        // has exactly one request in flight), so the deadline is kept
        // short: rounds close on the greedy drain, which already holds
        // everything that queued behind the previous round.
        batch_deadline: Duration::from_micros(100),
        coalesce,
        round_cost: ROUND_COST,
        ..ServeConfig::default()
    }
}

/// Runs one load scenario and returns (rps, mean batch fill).
fn scenario(
    system: &Arc<VflSystem<LogisticRegression>>,
    coalesce: bool,
    threads: usize,
) -> (f64, f64) {
    let server = PredictionServer::spawn(
        Arc::clone(system),
        Arc::new(fia_defense::DefensePipeline::new()),
        config(coalesce),
    )
    .expect("bind ephemeral port");
    // Warmup: let connection threads and the batcher reach steady state.
    let _ = fia_serve::run_load(
        server.addr(),
        &LoadConfig {
            threads,
            requests_per_thread: 25,
            rows_per_request: 1,
        },
    )
    .expect("warmup load");
    let report = fia_serve::run_load(
        server.addr(),
        &LoadConfig {
            threads,
            requests_per_thread: 250,
            rows_per_request: 1,
        },
    )
    .expect("timed load");
    let fill = server.metrics().mean_batch_fill;
    server.shutdown();
    (report.rps, fill)
}

/// One pooled load scenario at 8 client threads: `replicas` backends,
/// optionally with a fully warmed released-score cache. Returns the
/// achieved rps and the server's final metrics snapshot.
fn pool_scenario(
    system: &Arc<VflSystem<LogisticRegression>>,
    replicas: usize,
    warm_cache: bool,
) -> (f64, fia_serve::MetricsReport) {
    pool_scenario_telemetry(system, replicas, warm_cache, true)
}

/// Like [`pool_scenario`], with the telemetry recording flag explicit —
/// the off/on pair prices the instrumentation itself.
fn pool_scenario_telemetry(
    system: &Arc<VflSystem<LogisticRegression>>,
    replicas: usize,
    warm_cache: bool,
    recording: bool,
) -> (f64, fia_serve::MetricsReport) {
    let server = PredictionServer::spawn(
        Arc::clone(system),
        Arc::new(fia_defense::DefensePipeline::new()),
        ServeConfig {
            replicas,
            cache_capacity: if warm_cache { 1024 } else { 0 },
            ..config(true)
        },
    )
    .expect("bind ephemeral port");
    server.set_telemetry_recording(recording);
    fia_telemetry::global().set_recording(recording);
    // Warmup: steady-state threads, and — when the cache is on — one
    // full pass over the 512-row stored set so the timed run is
    // entirely cache-served (8 threads × 64 requests covers rows
    // 0..511 exactly once).
    let _ = fia_serve::run_load(
        server.addr(),
        &LoadConfig {
            threads: 8,
            requests_per_thread: 64,
            rows_per_request: 1,
        },
    )
    .expect("warmup load");
    let report = fia_serve::run_load(
        server.addr(),
        &LoadConfig {
            threads: 8,
            requests_per_thread: 200,
            rows_per_request: 1,
        },
    )
    .expect("timed load");
    let metrics = server.metrics();
    server.shutdown();
    (report.rps, metrics)
}

/// One open-loop scenario: a fixed `offered_rps` arrival schedule
/// (spread over 16 sender connections) against a `replicas`-backend
/// cold server. Unlike the closed loop — where every client has exactly
/// one 1-row request in flight and batch fill is capped by the client
/// count — arrivals keep coming while rounds are in flight, so queue
/// depth (and therefore coalesced fill) reflects the *offered* rate.
fn open_scenario(
    system: &Arc<VflSystem<LogisticRegression>>,
    replicas: usize,
    offered_rps: f64,
) -> (fia_serve::OpenLoadReport, f64) {
    let server = PredictionServer::spawn(
        Arc::clone(system),
        Arc::new(fia_defense::DefensePipeline::new()),
        ServeConfig {
            replicas,
            ..config(true)
        },
    )
    .expect("bind ephemeral port");
    // Warmup: reach steady-state connection threads.
    let _ = fia_serve::run_load(
        server.addr(),
        &LoadConfig {
            threads: 8,
            requests_per_thread: 25,
            rows_per_request: 1,
        },
    )
    .expect("warmup load");
    // Server metrics are cumulative since spawn; snapshot after warmup
    // so the reported fill covers only the open-loop rounds — the
    // closed-loop warmup's shallow rounds would otherwise dilute the
    // very number this section exists to isolate.
    let warm = server.metrics();
    // ~0.4 s of schedule, bounded so extreme rates stay cheap.
    let total_requests = ((offered_rps * 0.4) as usize).clamp(200, 4000);
    let report = fia_serve::run_load_open(
        server.addr(),
        &OpenLoadConfig {
            connections: 16,
            arrival_rps: offered_rps,
            total_requests,
            rows_per_request: 1,
        },
    )
    .expect("open-loop load");
    let metrics = server.metrics();
    server.shutdown();
    let fill = (metrics.rows - warm.rows) as f64 / (metrics.rounds - warm.rounds).max(1) as f64;
    (report, fill)
}

fn main() {
    let mut h = Harness::new("serve", 1, 0);
    let system = deployment();

    let mut speedup_8t = 0.0;
    for &threads in &[1usize, 4, 8] {
        let (rps_unbatched, _) = scenario(&system, false, threads);
        let (rps_batched, fill) = scenario(&system, true, threads);
        h.metric(&format!("rps_unbatched_{threads}t"), rps_unbatched);
        h.metric(&format!("rps_batched_{threads}t"), rps_batched);
        h.metric(&format!("batched_fill_{threads}t"), fill);
        let speedup = rps_batched / rps_unbatched;
        h.metric(&format!("batched_speedup_{threads}t"), speedup);
        if threads == 8 {
            speedup_8t = speedup;
        }
    }
    h.write_json("BENCH_serve.json");

    // ------------------------------------------------------------------
    // Pool section: sharded dispatch + released-score cache at 8 client
    // threads. The 1-replica cold run *is* the PR-2 single-batcher
    // server, measured fresh so the ratios share one machine state.
    let mut p = Harness::new("serve_pool", 1, 0);
    let mut rps_1r_cold = 0.0;
    let mut fill_4r_closed = 0.0;
    for &replicas in &[1usize, 2, 4] {
        let (rps, m) = pool_scenario(&system, replicas, false);
        p.metric(&format!("rps_{replicas}r_cold_8t"), rps);
        p.metric(&format!("fill_{replicas}r_cold_8t"), m.mean_batch_fill);
        let busy = m.replica_rounds.iter().filter(|&&r| r > 0).count();
        p.metric(&format!("busy_replicas_{replicas}r_cold"), busy as f64);
        if replicas == 1 {
            rps_1r_cold = rps;
        } else {
            p.metric(&format!("pool_speedup_{replicas}r_cold"), rps / rps_1r_cold);
        }
        if replicas == 4 {
            fill_4r_closed = m.mean_batch_fill;
        }
    }
    let (rps_4r_warm, m_warm) = pool_scenario(&system, 4, true);
    p.metric("rps_4r_warm_8t", rps_4r_warm);
    p.metric("cache_hit_rate_4r_warm", m_warm.cache_hit_rate());
    let warm_speedup = rps_4r_warm / rps_1r_cold;
    p.metric("pool_speedup_4r_warm", warm_speedup);

    // ------------------------------------------------------------------
    // Open-loop section: fixed arrival rates against the 4-replica cold
    // pool. Closed-loop 1-row traffic (above) caps queue depth at the
    // client count, diluting batch fill; an open-loop schedule keeps
    // arrivals coming while rounds are in flight, so the fill numbers
    // here are the pool's, not the loop's. Offered rates are multiples
    // of the measured single-batcher capacity so the section is
    // machine-relative.
    let mut fill_2x = 0.0;
    for &mult in &[1.0f64, 2.0] {
        let offered = mult * rps_1r_cold;
        let (report, fill) = open_scenario(&system, 4, offered);
        let tag = format!("{mult}x");
        p.metric(&format!("openloop_offered_rps_{tag}"), report.offered_rps);
        p.metric(&format!("openloop_achieved_rps_{tag}"), report.achieved_rps);
        p.metric(&format!("openloop_fill_4r_{tag}"), fill);
        p.metric(&format!("openloop_p99_us_{tag}"), report.p99_latency_us);
        p.metric(
            &format!("openloop_late_frac_{tag}"),
            report.late_sends as f64 / report.total_requests.max(1) as f64,
        );
        if mult == 2.0 {
            fill_2x = fill;
        }
    }
    // Headline: batch fill under open-loop pressure vs the diluted
    // closed-loop fill measured above on the same 4-replica pool (same
    // JSON, same machine state — the ratio is self-consistent with
    // fill_4r_cold_8t by construction).
    p.metric("openloop_fill_gain_4r", fill_2x / fill_4r_closed.max(1e-9));

    // ------------------------------------------------------------------
    // Telemetry overhead: the same 2-replica cold closed-loop scenario
    // with every instrument recording vs the registry recording flag
    // off (each record call degrades to one relaxed load and a branch).
    // The interleaved off/on/off/on order splits machine drift across
    // both arms.
    let mut rps_off = 0.0;
    let mut rps_on = 0.0;
    for _ in 0..2 {
        rps_off += pool_scenario_telemetry(&system, 2, false, false).0;
        rps_on += pool_scenario_telemetry(&system, 2, false, true).0;
    }
    fia_telemetry::global().set_recording(true);
    let telemetry_overhead_frac = 1.0 - rps_on / rps_off.max(1e-9);
    p.metric("telemetry_overhead_frac", telemetry_overhead_frac);
    p.write_json("BENCH_serve_pool.json");

    // Wall-clock ratios are noisy on shared CI runners; FIA_BENCH_NO_ASSERT
    // turns the acceptance bars into report-only metrics there while
    // keeping them enforced for local/dev runs. The JSON is written
    // first either way, so a failed bar never discards the measurements.
    if std::env::var_os("FIA_BENCH_NO_ASSERT").is_none() {
        assert!(
            speedup_8t >= 2.0,
            "batched server speedup {speedup_8t:.2}x at 8 threads is below the 2x acceptance bar"
        );
        assert!(
            warm_speedup >= 2.0,
            "4-replica warm-cache speedup {warm_speedup:.2}x over the single-batcher server \
             is below the 2x acceptance bar"
        );
        assert!(
            telemetry_overhead_frac <= 0.03,
            "telemetry overhead {telemetry_overhead_frac:.4} exceeds the 3% acceptance bar"
        );
    }
}
