//! Kernel-layer benches: matmul GFLOP/s across backend × precision, and
//! GRNA generator training under the f64 vs mixed-f32 tape. Results land
//! in `BENCH_kernels.json`; the ≥ 2× AVX2-vs-scalar matmul bar at
//! 256×256+ is asserted locally and report-only under
//! `FIA_BENCH_NO_ASSERT` (shared CI runners make wall-clock ratios
//! noisy).

use fia_bench::harness::Harness;
use fia_core::{Grna, GrnaConfig};
use fia_linalg::{avx2_available, with_backend, Backend, Matrix, Precision};
use fia_models::{LogisticRegression, LrConfig, PredictProba};

/// Deterministic dense operand without pulling in an RNG: values in
/// roughly [-1, 1], no exact zeros (the scalar arm zero-skips).
fn operand(rows: usize, cols: usize, salt: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| {
        let x = ((i * 31 + j * 17 + salt * 7) % 251) as f64 / 125.0 - 1.0;
        if x == 0.0 {
            0.004
        } else {
            x
        }
    })
}

/// GFLOP/s for an `n×n · n×n` multiply at the given median time.
fn gflops(n: usize, median_ns: f64) -> f64 {
    (2 * n * n * n) as f64 / median_ns
}

fn matmul_sweep(h: &mut Harness) -> Vec<(usize, f64)> {
    let backends: &[Backend] = if avx2_available() {
        &[Backend::Scalar, Backend::Avx2]
    } else {
        &[Backend::Scalar]
    };
    let mut speedups = Vec::new();
    for &n in &[64usize, 256, 1024] {
        let a = operand(n, n, 1);
        let b = operand(n, n, 2);
        let mut medians = Vec::new();
        for &backend in backends {
            for precision in [Precision::F64, Precision::F32] {
                let name = format!("matmul_{n}_{}_{}", precision.name(), backend.name());
                let r = h.bench(&name, || {
                    with_backend(backend, || match precision {
                        Precision::F64 => a.matmul(std::hint::black_box(&b)),
                        Precision::F32 => a.matmul_mixed(std::hint::black_box(&b)),
                    })
                });
                h.metric(&format!("{name}_gflops"), gflops(n, r.median_ns));
                if precision == Precision::F64 {
                    medians.push(r.median_ns);
                }
            }
        }
        if let [scalar_ns, avx2_ns] = medians[..] {
            let speedup = scalar_ns / avx2_ns;
            h.metric(&format!("matmul_{n}_f64_avx2_speedup"), speedup);
            speedups.push((n, speedup));
        }
    }
    speedups
}

/// Smoke-sized GRNA training (the attack's hot loop) under both tape
/// precisions, on a synthetic deployment shaped like the paper's primary
/// one.
fn grna_training(h: &mut Harness) {
    let cfg = fia_data::SynthConfig {
        n_samples: 400,
        n_features: 12,
        n_informative: 8,
        n_redundant: 4,
        n_classes: 3,
        class_sep: 2.0,
        redundant_noise: 0.05,
        flip_y: 0.0,
        shuffle_features: false,
        seed: 11,
    };
    let ds = fia_data::normalize_dataset(&fia_data::make_classification(&cfg)).0;
    let model = LogisticRegression::fit(
        &ds,
        &LrConfig {
            epochs: 10,
            ..LrConfig::default()
        },
    );
    let adv: Vec<usize> = (0..8).collect();
    let target: Vec<usize> = (8..12).collect();
    let x_adv = ds.features.select_columns(&adv).unwrap();
    let conf = model.predict_proba(&ds.features);
    let base = GrnaConfig {
        hidden: vec![96, 48],
        epochs: 6,
        ..GrnaConfig::paper()
    };

    let mut medians = Vec::new();
    for precision in [Precision::F64, Precision::F32] {
        let cfg = base.clone().with_precision(precision);
        let r = h.bench(&format!("grna_train_{}", precision.name()), || {
            Grna::new(&model, &adv, &target, cfg.clone())
                .train(std::hint::black_box(&x_adv), std::hint::black_box(&conf))
        });
        medians.push(r.median_ns);
    }
    if let [f64_ns, f32_ns] = medians[..] {
        h.metric("grna_train_f32_speedup", f64_ns / f32_ns);
    }
}

fn main() {
    let mut h = Harness::new("kernels", 5, 1);
    println!(
        "dispatched backend: {} (FIA_FORCE_SCALAR pins scalar)",
        fia_linalg::detected_backend().name()
    );

    let speedups = matmul_sweep(&mut h);
    grna_training(&mut h);
    h.write_json("BENCH_kernels.json");

    // Acceptance bar: ≥ 2× f64 matmul throughput over the scalar arm at
    // 256×256 and above on an AVX2 host.
    if std::env::var_os("FIA_BENCH_NO_ASSERT").is_none() {
        for (n, speedup) in speedups {
            if n >= 256 {
                assert!(
                    speedup >= 2.0,
                    "avx2 matmul_{n} speedup {speedup:.2}x below the 2x acceptance bar"
                );
            }
        }
    }
}
