//! Durability pricing for the campaign service (`BENCH_campaignd.json`).
//!
//! The daemon appends one fsync'd checkpoint frame to the per-job
//! write-ahead log after every corpus chunk — *before* it publishes the
//! chunk's events — so a `SIGKILL` at any instant resumes bit-exactly.
//! This bench prices that discipline: the same served-oracle campaign
//! is driven chunk-by-chunk twice, once bare and once checkpointing
//! exactly as a daemon worker does (blob encode + framed append +
//! `fdatasync` per chunk). The headline metric is
//! `checkpoint_overhead_frac` = (checkpointed − bare) / bare over the
//! steady-state chunk loop, with a ≤ 5% acceptance bar: against real
//! attack compute plus deployment round trips, the log must be almost
//! free.
//!
//! Like the serve benches, the deployment simulates the secure-
//! computation cost a real VFL serving stack pays per joint prediction
//! round (`ROUND_COST`); the in-the-clear model evaluation would
//! otherwise make the oracle unrealistically free and price the fsync
//! against nothing. Arms alternate order every measurement round so
//! machine drift lands on both sides. Wall-clock ratios are noisy on
//! shared CI runners, so the bar is report-only under
//! `FIA_BENCH_NO_ASSERT=1` and enforced locally.

use fia_bench::harness::Harness;
use fia_campaign::{Campaign, NullObserver, OracleSpec, ServedConfig, StepOutcome};
use fia_campaignd::wal::JobLog;
use fia_campaignd::{JobAttack, JobDefense, JobModel, JobOracle, JobSpec};
use fia_data::PaperDataset;
use std::path::Path;
use std::time::{Duration, Instant};

/// The simulated secure-protocol cost of one joint-prediction round.
/// A daemon chunk (2048 rows) is served as a single stored-index fetch
/// round, so this charges ~12 µs of secure compute per row — charitable
/// next to published per-row HE/MPC inference costs (milliseconds), and
/// in the same band as the serve benches' 300 µs per ≤ 64-row coalesced
/// round (~4.7 µs/row).
const ROUND_COST: Duration = Duration::from_millis(25);

/// The scenario both arms run: a served deployment (real TCP between
/// the campaign and its oracle) so the per-chunk fsync competes with
/// deployment round trips, exactly as it does inside the daemon.
fn spec() -> JobSpec {
    JobSpec {
        dataset: PaperDataset::CreditCard,
        scale: 0.5,
        target_fraction: 0.3,
        seed: 29,
        model: JobModel::Logistic,
        defense: JobDefense::RoundingFine,
        attacks: vec![JobAttack::Esa],
        max_queries: None,
        max_rows: None,
        chunk: 2048,
        oracle: JobOracle::Shared {
            replicas: 1,
            cache_capacity: 0,
        },
        throttle_ms: 0,
    }
}

/// Measurements from one full campaign run.
struct RunStats {
    /// Steady-state chunk-loop wall-clock, seconds (excludes scenario
    /// build, server spawn and finalize — the daemon pays those once
    /// per job, not per checkpoint).
    loop_s: f64,
    chunks: u64,
    bytes: u64,
}

/// Drives one full campaign chunk-by-chunk. When `log` is given, every
/// chunk appends its checkpoint blob — the daemon worker's exact write
/// path.
fn build_scenario(spec: &JobSpec) -> fia_campaign::ResolvedScenario {
    spec.to_scenario()
        .with_oracle(OracleSpec::Served(ServedConfig {
            round_cost: ROUND_COST,
            ..ServedConfig::default()
        }))
        .build()
}

fn run_campaign(
    spec: &JobSpec,
    scenario: &fia_campaign::ResolvedScenario,
    log: Option<&mut JobLog>,
) -> RunStats {
    let mut campaign = Campaign::new(scenario.clone())
        .with_attacks(spec.attack_specs())
        .with_budget(spec.budget())
        .with_chunk(spec.chunk as usize);
    let mut log = log;
    let mut chunks = 0u64;
    let mut bytes = 0u64;
    campaign.begin(&mut NullObserver).unwrap();
    let t0 = Instant::now();
    loop {
        let outcome = campaign.step(&mut NullObserver).unwrap();
        if let Some(log) = log.as_deref_mut() {
            let blob = campaign.checkpoint().to_blob();
            bytes += blob.len() as u64;
            log.append(&blob).unwrap();
        }
        chunks += 1;
        if outcome != StepOutcome::Chunk {
            break;
        }
    }
    let loop_s = t0.elapsed().as_secs_f64();
    campaign.finalize(&mut NullObserver).unwrap();
    campaign.shutdown();
    RunStats {
        loop_s,
        chunks,
        bytes,
    }
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn main() {
    let mut p = Harness::new("campaignd", 1, 0);
    let spec = spec();
    let dir = std::env::temp_dir().join(format!("fia-bench-campaignd-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // Untimed warmup pair: page in the dataset, model training and the
    // serve stack before either arm is on the clock.
    let scenario = build_scenario(&spec);
    run_campaign(&spec, &scenario, None);
    run_campaign(&spec, &scenario, Some(&mut open_log(&dir, 0)));

    const ROUNDS: usize = 7;
    let mut bare_s = Vec::with_capacity(ROUNDS);
    let mut logged_s = Vec::with_capacity(ROUNDS);
    let mut chunks = 0u64;
    let mut bytes = 0u64;
    for round in 0..ROUNDS {
        // Alternate which arm goes first so slow drift cancels.
        let logged_first = round % 2 == 1;
        for arm in 0..2 {
            if (arm == 0) == logged_first {
                let mut log = open_log(&dir, round as u64 + 1);
                let stats = run_campaign(&spec, &scenario, Some(&mut log));
                logged_s.push(stats.loop_s);
                chunks = stats.chunks;
                bytes = stats.bytes;
            } else {
                bare_s.push(run_campaign(&spec, &scenario, None).loop_s);
            }
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();

    let bare = median(bare_s);
    let logged = median(logged_s);
    let checkpoint_overhead_frac = (logged - bare) / bare.max(1e-9);
    p.metric("chunk_loop_bare_ms", bare * 1e3);
    p.metric("chunk_loop_checkpointed_ms", logged * 1e3);
    p.metric("checkpoints_per_run", chunks as f64);
    p.metric("checkpoint_bytes_per_run", bytes as f64);
    p.metric(
        "checkpoint_append_us",
        (logged - bare).max(0.0) * 1e6 / chunks.max(1) as f64,
    );
    p.metric("checkpoint_overhead_frac", checkpoint_overhead_frac);
    p.write_json("BENCH_campaignd.json");

    // The JSON is written first either way, so a failed bar never
    // discards the measurements.
    if std::env::var_os("FIA_BENCH_NO_ASSERT").is_none() {
        assert!(
            checkpoint_overhead_frac <= 0.05,
            "per-chunk checkpointing costs {:.2}% of campaign wall-clock, above the 5% bar",
            checkpoint_overhead_frac * 100.0
        );
    }
}

fn open_log(dir: &Path, round: u64) -> JobLog {
    JobLog::open(&dir.join(format!("job-{round}.log"))).unwrap()
}
