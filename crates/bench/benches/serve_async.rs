//! Reactor concurrency bench (`BENCH_serve_async.json`).
//!
//! The thread-per-connection server capped out at a few dozen clients
//! and, under an open-loop arrival schedule at 2× its own capacity,
//! fell behind on virtually every send (`openloop_late_frac_2x` ≈ 0.99
//! in `BENCH_serve_pool.json`): with one blocking sender thread per
//! connection the *generator* — not the server — became the bottleneck,
//! and the server's accept loop couldn't hold more sockets than it
//! could afford threads.
//!
//! This bench drives the epoll reactor (and its multiplexed open-loop
//! client) across a connection sweep — 64, 512 and 4096 simultaneous
//! sockets — at 1× and 2× the measured closed-loop capacity of the same
//! 4-replica pool. Per point it reports offered vs achieved rps, the
//! late-send fraction (an arrival is late when its scheduled start had
//! already passed at dispatch time) and p99 latency. Headline:
//! `openloop_late_frac_2x` at the largest connection count, with a
//! < 0.05 acceptance bar — the reactor must keep a 2×-capacity schedule
//! on time across 4096 sockets where the old path was late 99% of the
//! time across 16.
//!
//! The file also carries `audit_overhead_frac`: closed-loop throughput
//! with the per-client audit ledger on vs off, held to the same ≤3%
//! bar as the telemetry kill-switch.
//!
//! Wall-clock bars are report-only under `FIA_BENCH_NO_ASSERT=1` (CI);
//! the JSON is written before any assertion, so a failed bar never
//! discards the measurements.

use fia_bench::harness::Harness;
use fia_linalg::Matrix;
use fia_models::LogisticRegression;
use fia_serve::{LoadConfig, OpenLoadConfig, PredictionServer, ServeConfig};
use fia_vfl::{VerticalPartition, VflSystem};
use std::sync::Arc;
use std::time::Duration;

/// Same credit-card-shaped deployment as `benches/serve.rs`: 23
/// features, binary LR, 512 stored rows split [16, 7] across two
/// parties.
fn deployment() -> Arc<VflSystem<LogisticRegression>> {
    let d = 23;
    let mut state = 0x5EEDu64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    };
    let w = Matrix::from_fn(d, 1, |_, _| next());
    let model = LogisticRegression::from_parameters(w, vec![0.0], 2);
    let global = Matrix::from_fn(512, d, |_, _| 0.5 + 0.49 * next());
    let partition = VerticalPartition::contiguous(&[16, 7]);
    Arc::new(VflSystem::from_global(model, partition, &global))
}

/// The simulated secure-protocol round cost (same as `benches/serve.rs`
/// so capacities are comparable across the two JSON files).
const ROUND_COST: Duration = Duration::from_micros(300);

fn config(replicas: usize) -> ServeConfig {
    ServeConfig {
        batch_cap: 32,
        batch_deadline: Duration::from_micros(100),
        coalesce: true,
        round_cost: ROUND_COST,
        replicas,
        ..ServeConfig::default()
    }
}

/// Measures the pool's closed-loop capacity (8 clients, 1-row
/// requests), the machine-relative anchor for the offered rates below.
fn closed_loop_capacity(system: &Arc<VflSystem<LogisticRegression>>) -> f64 {
    closed_loop_rps(system, true)
}

/// One closed-loop capacity measurement with the per-client audit
/// ledger on or off — the two arms of `audit_overhead_frac`.
fn closed_loop_rps(system: &Arc<VflSystem<LogisticRegression>>, audit: bool) -> f64 {
    let server = PredictionServer::spawn(
        Arc::clone(system),
        Arc::new(fia_defense::DefensePipeline::new()),
        ServeConfig { audit, ..config(4) },
    )
    .expect("bind ephemeral port");
    let _ = fia_serve::run_load(
        server.addr(),
        &LoadConfig {
            threads: 8,
            requests_per_thread: 50,
            rows_per_request: 1,
        },
    )
    .expect("warmup load");
    let report = fia_serve::run_load(
        server.addr(),
        &LoadConfig {
            threads: 8,
            requests_per_thread: 250,
            rows_per_request: 1,
        },
    )
    .expect("timed load");
    server.shutdown();
    report.rps
}

/// One open-loop point: `connections` simultaneous sockets offering
/// `offered_rps` total against a fresh 4-replica cold pool. Returns the
/// load report plus the server's accept-error count (which must stay 0:
/// the fd budget covers the sweep, so any error means the reactor
/// mishandled accept).
fn open_point(
    system: &Arc<VflSystem<LogisticRegression>>,
    connections: usize,
    offered_rps: f64,
) -> (fia_serve::OpenLoadReport, u64) {
    let server = PredictionServer::spawn(
        Arc::clone(system),
        Arc::new(fia_defense::DefensePipeline::new()),
        config(4),
    )
    .expect("bind ephemeral port");
    // ~0.5 s of schedule, bounded so extreme rates stay cheap.
    let total_requests = ((offered_rps * 0.5) as usize).clamp(512, 8192);
    let report = fia_serve::run_load_open(
        server.addr(),
        &OpenLoadConfig {
            connections,
            arrival_rps: offered_rps,
            total_requests,
            rows_per_request: 1,
        },
    )
    .expect("open-loop load");
    let accept_errors = server.metrics().accept_errors;
    server.shutdown();
    (report, accept_errors)
}

fn main() {
    let mut h = Harness::new("serve_async", 1, 0);
    let system = deployment();

    let capacity = closed_loop_capacity(&system);
    h.metric("closed_loop_capacity_rps", capacity);

    // Clamp the sweep to the process fd budget: each connection costs
    // one fd on the client side and one on the server side, plus slack
    // for the workspace's own files/pipes.
    let fd_budget = fd_soft_limit().unwrap_or(20_000);
    let max_conns = (fd_budget.saturating_sub(256) / 2).max(64);

    let mut late_frac_2x_max_conns = 0.0f64;
    let mut accept_errors_total = 0u64;
    for &conns in &[64usize, 512, 4096] {
        let conns = conns.min(max_conns);
        for &mult in &[1.0f64, 2.0] {
            let offered = mult * capacity;
            let (report, accept_errors) = open_point(&system, conns, offered);
            accept_errors_total += accept_errors;
            let tag = format!("{conns}c_{mult}x");
            h.metric(&format!("openloop_offered_rps_{tag}"), report.offered_rps);
            h.metric(&format!("openloop_achieved_rps_{tag}"), report.achieved_rps);
            h.metric(&format!("openloop_p99_us_{tag}"), report.p99_latency_us);
            let late_frac = report.late_sends as f64 / report.total_requests.max(1) as f64;
            h.metric(&format!("openloop_late_frac_{tag}"), late_frac);
            if mult == 2.0 {
                // The headline tracks the *largest* swept connection
                // count — the regime the old server could not enter.
                late_frac_2x_max_conns = late_frac;
            }
        }
    }
    // Headline, name-compatible with the BENCH_serve_pool baseline
    // (0.988 there, thread-per-sender generator at 16 connections).
    h.metric("openloop_late_frac_2x", late_frac_2x_max_conns);
    h.metric("accept_errors_total", accept_errors_total as f64);

    // ------------------------------------------------------------------
    // Audit-ledger overhead: the same closed-loop scenario with the
    // per-client ledger on vs off. Per answered request the ledger is a
    // BTreeMap probe plus a few integer bumps and one hash-set insert
    // per row, all on the reactor thread — the bar is the same ≤3% the
    // telemetry kill-switch is held to. The interleaved off/on/off/on
    // order splits machine drift across both arms.
    let mut rps_off = 0.0;
    let mut rps_on = 0.0;
    for _ in 0..3 {
        rps_off += closed_loop_rps(&system, false);
        rps_on += closed_loop_rps(&system, true);
    }
    let audit_overhead_frac = 1.0 - rps_on / rps_off.max(1e-9);
    h.metric("audit_overhead_frac", audit_overhead_frac);
    h.write_json("BENCH_serve_async.json");

    if std::env::var_os("FIA_BENCH_NO_ASSERT").is_none() {
        assert!(
            audit_overhead_frac <= 0.03,
            "audit-ledger overhead {audit_overhead_frac:.4} exceeds the 3% acceptance bar"
        );
        assert!(
            late_frac_2x_max_conns < 0.05,
            "late fraction {late_frac_2x_max_conns:.4} at 2x offered load on the largest \
             connection sweep exceeds the 5% acceptance bar"
        );
        assert_eq!(
            accept_errors_total, 0,
            "reactor reported accept errors during the sweep"
        );
    }
}

/// `RLIMIT_NOFILE` soft limit via /proc (std-only, Linux); `None`
/// elsewhere, in which case the sweep assumes a generous budget.
fn fd_soft_limit() -> Option<usize> {
    let limits = std::fs::read_to_string("/proc/self/limits").ok()?;
    let line = limits.lines().find(|l| l.starts_with("Max open files"))?;
    line.split_whitespace().nth(3)?.parse().ok()
}
