//! Minimal wall-clock bench harness.
//!
//! The offline build environment has no `criterion`, so `benches/` use
//! this hand-rolled stand-in: warmup + repeated timed runs, a robust
//! median summary, and a machine-readable JSON dump
//! (`BENCH_attacks.json`) so future changes can track the perf
//! trajectory. The JSON layout intentionally mirrors a flattened
//! criterion summary (`name`, `median_ns`, `mean_ns`, `samples`).

use std::fmt::Write as _;
use std::time::Instant;

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark identifier (`group/name`).
    pub name: String,
    /// Median of per-iteration wall-clock times, nanoseconds.
    pub median_ns: f64,
    /// Mean of per-iteration wall-clock times, nanoseconds.
    pub mean_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
}

impl BenchResult {
    /// Median time in milliseconds.
    pub fn median_ms(&self) -> f64 {
        self.median_ns / 1e6
    }
}

/// A named collection of benchmarks, run sequentially.
pub struct Harness {
    group: &'static str,
    samples: usize,
    warmup: usize,
    results: Vec<BenchResult>,
    /// Extra scalar metrics (speedups, ratios) to embed in the JSON.
    metrics: Vec<(String, f64)>,
}

impl Harness {
    /// Creates a harness; `samples` timed iterations (after `warmup`
    /// untimed ones) per benchmark.
    pub fn new(group: &'static str, samples: usize, warmup: usize) -> Self {
        Harness {
            group,
            samples: samples.max(1),
            warmup,
            results: Vec::new(),
            metrics: Vec::new(),
        }
    }

    /// Times `f`, keeping its output alive via `std::hint::black_box`.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) -> BenchResult {
        for _ in 0..self.warmup {
            std::hint::black_box(f());
        }
        let mut times_ns = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(f());
            times_ns.push(t0.elapsed().as_nanos() as f64);
        }
        times_ns.sort_by(|a, b| a.total_cmp(b));
        let median_ns = times_ns[times_ns.len() / 2];
        let mean_ns = times_ns.iter().sum::<f64>() / times_ns.len() as f64;
        let result = BenchResult {
            name: format!("{}/{}", self.group, name),
            median_ns,
            mean_ns,
            samples: self.samples,
        };
        println!(
            "{:<48} median {:>10.3} ms   mean {:>10.3} ms   ({} samples)",
            result.name,
            result.median_ns / 1e6,
            result.mean_ns / 1e6,
            result.samples
        );
        self.results.push(result.clone());
        result
    }

    /// Records a derived scalar metric (e.g. a speedup ratio).
    pub fn metric(&mut self, name: &str, value: f64) {
        println!("{:<48} {value:.4}", format!("{}/{}", self.group, name));
        self.metrics
            .push((format!("{}/{}", self.group, name), value));
    }

    /// All results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Serializes results + metrics as a JSON document (criterion-like
    /// flattened summary).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"benchmarks\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"samples\": {}}}",
                r.name, r.median_ns, r.mean_ns, r.samples
            );
            out.push_str(if i + 1 < self.results.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"metrics\": {\n");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            let _ = write!(out, "    \"{k}\": {v:.6}");
            out.push_str(if i + 1 < self.metrics.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Writes the JSON summary to `path` (best-effort; benches must not
    /// fail on a read-only filesystem).
    pub fn write_json(&self, path: &str) {
        match std::fs::write(path, self.to_json()) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_and_records() {
        let mut h = Harness::new("test", 3, 1);
        let r = h.bench("busy", || (0..1000).sum::<u64>());
        assert_eq!(r.samples, 3);
        assert!(r.median_ns > 0.0);
        assert_eq!(h.results().len(), 1);
    }

    #[test]
    fn json_is_well_formed_ish() {
        let mut h = Harness::new("g", 2, 0);
        h.bench("a", || 1 + 1);
        h.metric("speedup", 4.2);
        let json = h.to_json();
        assert!(json.contains("\"g/a\""));
        assert!(json.contains("\"g/speedup\": 4.2"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
