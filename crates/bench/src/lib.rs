#![warn(missing_docs)]

//! # fia-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation section
//! (see DESIGN.md §3 for the full index). The [`experiments`] module has
//! one sub-module per table/figure, each exposing a `run(&ExperimentConfig)`
//! returning typed rows; `src/bin/repro.rs` prints them in the paper's
//! layout; `benches/` measures representative configurations under the
//! in-tree wall-clock [`harness`] (criterion is unavailable offline) and
//! emits a machine-readable `BENCH_attacks.json` perf summary.
//!
//! Two profiles are provided: [`profiles::ExperimentConfig::quick`] runs
//! every experiment in seconds on scaled-down workloads (the *shapes* of
//! the results — who wins, where thresholds fall — are preserved);
//! `paper()` uses the paper's full sizes.

pub mod experiments;
pub mod harness;
pub mod profiles;
pub mod report;
pub mod scenario;
