//! Shared attack-scenario construction — a thin wrapper over the
//! typed builder in `fia-campaign`.
//!
//! Every figure follows the same recipe (Section VI-A): generate the
//! dataset, split it, draw a random `d_target` feature block, train
//! centrally, run the prediction protocol. That recipe now lives in
//! [`fia_campaign::ScenarioSpec`] (the workspace's one scenario seam);
//! this module keeps the experiment modules' flat [`Scenario`] view of
//! its output, plus the evaluation helpers only the figure
//! reproductions need. Seed derivations are unchanged, so experiment
//! results are identical to the pre-campaign harness.

use fia_campaign::{PartitionSpec, ScenarioSpec};
use fia_data::{Dataset, PaperDataset, SplitSpec};
use fia_linalg::Matrix;
use fia_models::PredictProba;

/// A fully prepared attack scenario (the data side — experiments train
/// their own per-trial models).
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Dataset display name.
    pub name: String,
    /// Model-training partition.
    pub train: Dataset,
    /// Prediction partition (what the adversary attacks).
    pub prediction: Dataset,
    /// Sorted global indices of the adversary's features.
    pub adv_indices: Vec<usize>,
    /// Sorted global indices of the target's features.
    pub target_indices: Vec<usize>,
    /// The adversary's columns of the prediction set (`n × d_adv`).
    pub x_adv: Matrix,
    /// Ground-truth target columns of the prediction set
    /// (`n × d_target`) — used only for evaluation.
    pub truth: Matrix,
    /// Number of classes.
    pub n_classes: usize,
}

impl Scenario {
    /// Builds a scenario for one paper dataset by materializing the
    /// equivalent [`ScenarioSpec`].
    ///
    /// * `scale` — sample-count scale vs. Table II;
    /// * `target_fraction` — the swept `d_target / d`;
    /// * `prediction_fraction` — `n / |D|` for the prediction set
    ///   (`None` = the paper's default 50%);
    /// * `seed` — drives generation, splitting and the feature split.
    pub fn build(
        dataset: PaperDataset,
        scale: f64,
        target_fraction: f64,
        prediction_fraction: Option<f64>,
        seed: u64,
    ) -> Self {
        let mut spec = ScenarioSpec::paper(dataset)
            .with_scale(scale)
            .with_partition(PartitionSpec::two_block_random(target_fraction))
            .with_seed(seed);
        if let Some(f) = prediction_fraction {
            spec = spec.with_split(SplitSpec::paper_default().with_prediction_fraction(f));
        }
        let data = spec.materialize();
        Scenario {
            name: data.name,
            train: data.train,
            prediction: data.prediction,
            adv_indices: data.adv_indices,
            target_indices: data.target_indices,
            x_adv: data.x_adv,
            truth: data.truth,
            n_classes: data.n_classes,
        }
    }

    /// Confidence scores the protocol reveals for the prediction set.
    pub fn confidences<M: PredictProba>(&self, model: &M) -> Matrix {
        model.predict_proba(&self.prediction.features)
    }

    /// Reassembles full global samples from the adversary's (true)
    /// columns and inferred target columns — the input for
    /// branch-consistency evaluation on tree models.
    pub fn assemble_with_inferred(&self, inferred: &Matrix) -> Matrix {
        assert_eq!(inferred.rows(), self.x_adv.rows(), "row mismatch");
        assert_eq!(inferred.cols(), self.target_indices.len(), "col mismatch");
        let d = self.adv_indices.len() + self.target_indices.len();
        let mut full = Matrix::zeros(inferred.rows(), d);
        for i in 0..full.rows() {
            for (k, &f) in self.adv_indices.iter().enumerate() {
                full[(i, f)] = self.x_adv[(i, k)];
            }
            for (k, &f) in self.target_indices.iter().enumerate() {
                full[(i, f)] = inferred[(i, k)];
            }
        }
        full
    }

    /// `d_target` for this scenario.
    pub fn d_target(&self) -> usize {
        self.target_indices.len()
    }

    /// Number of accumulated predictions `n`.
    pub fn n_predictions(&self) -> usize {
        self.prediction.n_samples()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_shapes_consistent() {
        let s = Scenario::build(PaperDataset::CreditCard, 0.01, 0.3, None, 7);
        assert_eq!(s.adv_indices.len() + s.target_indices.len(), 23);
        assert_eq!(s.d_target(), 7); // 30% of 23 ≈ 7
        assert_eq!(s.x_adv.cols(), 16);
        assert_eq!(s.truth.cols(), 7);
        assert_eq!(s.x_adv.rows(), s.prediction.n_samples());
        assert_eq!(s.n_classes, 2);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Scenario::build(PaperDataset::BankMarketing, 0.01, 0.4, None, 3);
        let b = Scenario::build(PaperDataset::BankMarketing, 0.01, 0.4, None, 3);
        assert_eq!(a.adv_indices, b.adv_indices);
        assert_eq!(a.x_adv, b.x_adv);
    }

    #[test]
    fn wrapper_matches_campaign_materialization() {
        // The wrapper is a view over ScenarioSpec::materialize — same
        // seeds, same data, bit-identical.
        let s = Scenario::build(PaperDataset::CreditCard, 0.01, 0.3, Some(0.2), 11);
        let data = ScenarioSpec::paper(PaperDataset::CreditCard)
            .with_scale(0.01)
            .with_partition(PartitionSpec::two_block_random(0.3))
            .with_split(SplitSpec::paper_default().with_prediction_fraction(0.2))
            .with_seed(11)
            .materialize();
        assert_eq!(s.adv_indices, data.adv_indices);
        assert_eq!(s.x_adv, data.x_adv);
        assert_eq!(s.truth, data.truth);
    }

    #[test]
    fn prediction_fraction_controls_n() {
        let small = Scenario::build(PaperDataset::Synthetic1, 0.005, 0.3, Some(0.1), 5);
        let large = Scenario::build(PaperDataset::Synthetic1, 0.005, 0.3, Some(0.5), 5);
        assert!(large.n_predictions() > 3 * small.n_predictions());
    }

    #[test]
    fn assemble_restores_global_layout() {
        let s = Scenario::build(PaperDataset::CreditCard, 0.01, 0.3, None, 7);
        // Assembling with the ground truth reproduces the prediction set.
        let full = s.assemble_with_inferred(&s.truth);
        assert!(full.max_abs_diff(&s.prediction.features).unwrap() < 1e-12);
    }
}
