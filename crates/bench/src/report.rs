//! Plain-text table rendering for the repro binary.

/// Renders an aligned text table.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{h:<w$}", w = widths[i]))
        .collect();
    out.push_str(&header_line.join("  "));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:<w$}", w = widths.get(i).copied().unwrap_or(c.len())))
            .collect();
        out.push_str(&line.join("  "));
        out.push('\n');
    }
    out
}

/// Formats an MSE-style metric with fixed precision.
pub fn fmt_metric(v: f64) -> String {
    format!("{v:.4}")
}

/// Formats an optional metric (e.g. a CBR with an empty tally).
pub fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(x) => fmt_metric(x),
        None => "n/a".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let s = render_table(
            "T",
            &["name", "value"],
            &[
                vec!["a".into(), "1.0".into()],
                vec!["longer".into(), "2.0".into()],
            ],
        );
        assert!(s.contains("== T =="));
        assert!(s.contains("longer"));
        // Header padded to the longest cell.
        assert!(s.lines().nth(1).unwrap().starts_with("name  "));
    }

    #[test]
    fn metric_formatting() {
        assert_eq!(fmt_metric(0.12345), "0.1235");
        assert_eq!(fmt_opt(None), "n/a");
        assert_eq!(fmt_opt(Some(1.0)), "1.0000");
    }
}
