//! Experiment sizing profiles.

use fia_core::GrnaConfig;
use fia_models::{DistillConfig, ForestConfig, LrConfig, MlpConfig, TreeConfig};

/// Everything an experiment needs to know about sizing and seeding.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Dataset scale relative to Table II sample counts (1.0 = paper).
    pub scale: f64,
    /// Master seed; every sub-experiment derives its own stream.
    pub seed: u64,
    /// Number of independent trials averaged per point (paper: 10).
    pub trials: usize,
    /// `d_target` fractions swept by the figures (paper: 10%–60%).
    pub dtarget_grid: Vec<f64>,
    /// GRN attack configuration.
    pub grna: GrnaConfig,
    /// Vertical-FL NN model configuration.
    pub mlp: MlpConfig,
    /// Logistic-regression training configuration.
    pub lr: LrConfig,
    /// Random-forest configuration.
    pub forest: ForestConfig,
    /// Decision-tree configuration (PRA target).
    pub tree: TreeConfig,
    /// RF→NN distillation configuration.
    pub distill: DistillConfig,
}

impl ExperimentConfig {
    /// Seconds-scale profile: ~1–2% of the paper's sample counts, an
    /// order-of-magnitude smaller networks, one trial. Preserves every
    /// qualitative effect the figures demonstrate.
    pub fn quick() -> Self {
        ExperimentConfig {
            scale: 0.012,
            seed: 42,
            trials: 1,
            dtarget_grid: vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6],
            grna: GrnaConfig::fast(),
            mlp: MlpConfig::fast(),
            lr: LrConfig {
                epochs: 25,
                ..LrConfig::default()
            },
            forest: ForestConfig::fast(),
            tree: TreeConfig::paper_dt(),
            distill: DistillConfig::fast(),
        }
    }

    /// An even smaller profile for Criterion benches and CI smoke tests.
    pub fn smoke() -> Self {
        let mut cfg = Self::quick();
        cfg.scale = 0.004;
        cfg.dtarget_grid = vec![0.2, 0.5];
        cfg.grna.epochs = 40;
        cfg.grna.hidden = vec![32, 16];
        cfg.grna.lr = 3e-3;
        cfg.mlp.epochs = 6;
        cfg.lr.epochs = 8;
        cfg.forest.n_trees = 10;
        cfg.distill.epochs = 6;
        cfg.distill.n_dummy = 400;
        cfg
    }

    /// Minutes-scale profile: 10% of the paper's sample counts with the
    /// paper's network architectures and 3 trials. The sweet spot for
    /// checking that quick-profile shapes persist as the data grows,
    /// without committing to the full multi-hour run.
    pub fn medium() -> Self {
        let mut cfg = Self::paper();
        cfg.scale = 0.1;
        cfg.trials = 3;
        cfg.grna.hidden = vec![192, 96, 48];
        cfg.grna.epochs = 50;
        cfg.mlp.hidden = vec![128, 64, 32];
        cfg.mlp.epochs = 20;
        cfg.distill.hidden = vec![256, 96];
        cfg.distill.n_dummy = 4_000;
        cfg
    }

    /// The paper's full sizes. Hours of compute on one machine.
    pub fn paper() -> Self {
        ExperimentConfig {
            scale: 1.0,
            seed: 42,
            trials: 10,
            dtarget_grid: vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6],
            grna: GrnaConfig::paper(),
            mlp: MlpConfig::paper_vfl(),
            lr: LrConfig::default(),
            forest: ForestConfig::paper_rf(),
            tree: TreeConfig::paper_dt(),
            distill: DistillConfig::paper(),
        }
    }

    /// Derives a deterministic per-(experiment, trial) seed.
    pub fn seed_for(&self, experiment: &str, trial: usize) -> u64 {
        // FNV-1a over the experiment tag, mixed with the trial index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in experiment.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^ self.seed.rotate_left(17) ^ ((trial as u64) << 48)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_differ_across_experiments_and_trials() {
        let cfg = ExperimentConfig::quick();
        let a = cfg.seed_for("fig5", 0);
        let b = cfg.seed_for("fig6", 0);
        let c = cfg.seed_for("fig5", 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Deterministic.
        assert_eq!(a, cfg.seed_for("fig5", 0));
    }

    #[test]
    fn quick_profile_is_small() {
        let cfg = ExperimentConfig::quick();
        assert!(cfg.scale < 0.05);
        assert_eq!(cfg.dtarget_grid.len(), 6);
    }

    #[test]
    fn paper_profile_full_scale() {
        let cfg = ExperimentConfig::paper();
        assert_eq!(cfg.scale, 1.0);
        assert_eq!(cfg.trials, 10);
        assert_eq!(cfg.grna.hidden, vec![600, 200, 100]);
        assert_eq!(cfg.mlp.hidden, vec![600, 300, 100]);
    }
}
