//! Regenerates every table and figure of the paper.
//!
//! ```text
//! repro [--profile quick|smoke|medium|paper] [--seed N] <experiment>...
//! experiments: table2 table3 fig5 fig6 fig7 fig8 fig9 fig10
//!              fig11ab fig11cd fig11ef ablation all
//! ```
//!
//! Results are printed as aligned text tables, one row per plotted point,
//! in the same series layout the paper reports.

use fia_bench::experiments::{
    ablation, fig10, fig11, fig5, fig6, fig7, fig8, fig9, table2, table3,
};
use fia_bench::profiles::ExperimentConfig;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: repro [--profile quick|smoke|medium|paper] [--seed N] <experiment>...\n\
         experiments: table2 table3 fig5 fig6 fig7 fig8 fig9 fig10 \
         fig11ab fig11cd fig11ef ablation all"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut profile = "quick".to_string();
    let mut seed: Option<u64> = None;
    let mut experiments: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--profile" => profile = it.next().unwrap_or_else(|| usage()),
            "--seed" => {
                seed = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--help" | "-h" => usage(),
            other => experiments.push(other.to_string()),
        }
    }
    if experiments.is_empty() {
        usage();
    }

    let mut cfg = match profile.as_str() {
        "quick" => ExperimentConfig::quick(),
        "smoke" => ExperimentConfig::smoke(),
        "medium" => ExperimentConfig::medium(),
        "paper" => ExperimentConfig::paper(),
        _ => usage(),
    };
    if let Some(s) = seed {
        cfg.seed = s;
    }
    println!(
        "# profile = {profile}, scale = {}, seed = {}, trials = {}",
        cfg.scale, cfg.seed, cfg.trials
    );

    let all = experiments.iter().any(|e| e == "all");
    let want = |name: &str| all || experiments.iter().any(|e| e == name);

    let t0 = Instant::now();
    if want("table2") {
        println!("{}", table2::render());
    }
    if want("fig5") {
        run_timed("fig5", || println!("{}", fig5::render(&fig5::run(&cfg))));
    }
    if want("fig6") {
        run_timed("fig6", || println!("{}", fig6::render(&fig6::run(&cfg))));
    }
    if want("table3") {
        run_timed("table3", || {
            println!("{}", table3::render(&table3::run(&cfg)))
        });
    }
    if want("fig7") {
        run_timed("fig7", || println!("{}", fig7::render(&fig7::run(&cfg))));
    }
    if want("fig8") {
        run_timed("fig8", || println!("{}", fig8::render(&fig8::run(&cfg))));
    }
    if want("fig9") {
        run_timed("fig9", || println!("{}", fig9::render(&fig9::run(&cfg))));
    }
    if want("fig10") {
        run_timed("fig10", || {
            let rows = fig10::run(&cfg);
            println!("{}", fig10::render(&rows));
            // The error-vs-correlation tradeoff is a *within-panel*
            // statement (panels differ in scale and model family).
            for panel in ["Bank marketing (LR)", "Credit card (RF)"] {
                let panel_rows: Vec<_> =
                    rows.iter().filter(|r| r.panel == panel).cloned().collect();
                println!(
                    "{panel}: corr(raw MSE, corr_adv) = {:.3}; corr(MSE/Var, corr_adv) = {:.3}",
                    fig10::mse_correlation_tradeoff(&panel_rows),
                    fig10::relative_mse_correlation_tradeoff(&panel_rows)
                );
            }
            println!(
                "(negative = correlated features reconstruct better; MSE/Var removes\n\
                 the feature-variance confound)\n"
            );
        });
    }
    if want("fig11ab") {
        run_timed("fig11ab", || {
            println!(
                "{}",
                fig11::render_rounding(
                    &fig11::run_rounding_esa(&cfg),
                    "Fig. 11a-b: rounding defense vs ESA"
                )
            )
        });
    }
    if want("fig11cd") {
        run_timed("fig11cd", || {
            println!(
                "{}",
                fig11::render_rounding(
                    &fig11::run_rounding_grna(&cfg),
                    "Fig. 11c-d: rounding defense vs GRNA-LR"
                )
            )
        });
    }
    if want("fig11ef") {
        run_timed("fig11ef", || {
            println!("{}", fig11::render_dropout(&fig11::run_dropout(&cfg)))
        });
    }
    if want("ablation") {
        run_timed("ablation", || {
            println!(
                "{}",
                ablation::render_pinv(&ablation::run_pinv_vs_ridge(&cfg, 1e-6))
            );
            println!(
                "{}",
                ablation::render_distill(&ablation::run_distill_sweep(&cfg))
            );
            println!(
                "{}",
                ablation::render_noise(&ablation::run_noise_sweep(&cfg))
            );
        });
    }
    eprintln!("# total wall clock: {:.1}s", t0.elapsed().as_secs_f64());
}

fn run_timed(name: &str, f: impl FnOnce()) {
    let t = Instant::now();
    f();
    eprintln!("# {name}: {:.1}s", t.elapsed().as_secs_f64());
}
