//! Extra design-choice ablations beyond the paper's tables
//! (DESIGN.md §6):
//!
//! * **pinv-vs-ridge** — ESA solved with the SVD pseudo-inverse versus a
//!   ridge-regularized normal-equation solve, quantifying why the paper's
//!   minimum-norm estimator is the right default.
//! * **distillation size sweep** — surrogate capacity versus GRNA-on-RF
//!   quality, probing the paper's 2000/200 surrogate choice.
//! * **noise defense sweep** — Gaussian confidence perturbation versus
//!   ESA and GRNA, an additional countermeasure beyond the paper's
//!   evaluated pair (its rounding results suggest the same asymmetry:
//!   equation-based attacks break long before distribution-learning
//!   ones).

use crate::experiments::common;
use crate::profiles::ExperimentConfig;
use crate::scenario::Scenario;
use fia_core::{metrics, EqualitySolvingAttack};
use fia_data::PaperDataset;
use fia_defense::NoiseDefense;
use fia_linalg::{cholesky, Matrix};
use fia_models::{distill_forest_with_pool, DistillConfig};

/// Result of the pinv-vs-ridge ESA comparison.
#[derive(Debug, Clone)]
pub struct PinvRow {
    /// Swept fraction `d_target / d`.
    pub dtarget_fraction: f64,
    /// MSE using the SVD pseudo-inverse (the paper's estimator).
    pub pinv_mse: f64,
    /// MSE using a ridge-regularized normal-equation solve.
    pub ridge_mse: f64,
}

/// Compares the two solvers on Credit card across the `d_target` grid.
pub fn run_pinv_vs_ridge(cfg: &ExperimentConfig, ridge_lambda: f64) -> Vec<PinvRow> {
    cfg.dtarget_grid
        .iter()
        .map(|&fraction| {
            let seed = cfg.seed_for(&format!("ablation-pinv/{fraction}"), 0);
            let scenario =
                Scenario::build(PaperDataset::CreditCard, cfg.scale, fraction, None, seed);
            let model = common::train_lr(&scenario, cfg, seed ^ 0xA1);
            let attack =
                EqualitySolvingAttack::new(&model, &scenario.adv_indices, &scenario.target_indices);
            let conf = scenario.confidences(&model);
            let pinv_est = common::run_attack(&attack, &scenario.x_adv, &conf);
            let ridge_est = ridge_solve_batch(&attack, &scenario, &conf, ridge_lambda);
            PinvRow {
                dtarget_fraction: fraction,
                pinv_mse: metrics::mse_per_feature(&pinv_est, &scenario.truth),
                ridge_mse: metrics::mse_per_feature(&ridge_est, &scenario.truth),
            }
        })
        .collect()
}

/// Ridge alternative: `x̂ = (ΘᵀΘ + λI)⁻¹ Θᵀ a`, reusing the attack's own
/// equation construction through
/// [`EqualitySolvingAttack::theta_target`]/[`EqualitySolvingAttack::rhs`].
fn ridge_solve_batch(
    attack: &EqualitySolvingAttack<'_>,
    scenario: &Scenario,
    confidences: &Matrix,
    lambda: f64,
) -> Matrix {
    let theta = attack.theta_target();
    let gram = theta
        .transpose()
        .matmul(theta)
        .expect("gram of finite matrix");
    let d_t = scenario.d_target();
    let mut regularized = gram;
    for i in 0..d_t {
        regularized[(i, i)] += lambda;
    }
    // The regularized Gram matrix is SPD: factor once, solve per sample.
    let factor = cholesky(&regularized).expect("ridge system is SPD");
    let mut out = Matrix::zeros(scenario.x_adv.rows(), d_t);
    for i in 0..out.rows() {
        let a = attack.rhs(scenario.x_adv.row(i), confidences.row(i));
        let rhs = theta.transpose().matvec(&a).expect("shape consistent");
        let x = factor.solve(&rhs).expect("factor shape matches");
        out.row_mut(i).copy_from_slice(&x);
    }
    out
}

/// Result of the distillation capacity sweep.
#[derive(Debug, Clone)]
pub struct DistillRow {
    /// Hidden widths of the surrogate.
    pub hidden: Vec<usize>,
    /// Surrogate fidelity (mean |Δconfidence| vs the forest).
    pub fidelity_gap: f64,
    /// GRNA-on-RF MSE using this surrogate.
    pub grna_mse: f64,
}

/// Sweeps surrogate sizes on Credit card at `d_target = 30%`.
pub fn run_distill_sweep(cfg: &ExperimentConfig) -> Vec<DistillRow> {
    let seed = cfg.seed_for("ablation-distill", 0);
    let scenario = Scenario::build(PaperDataset::CreditCard, cfg.scale, 0.3, None, seed);
    let forest = common::train_forest(&scenario, cfg, seed ^ 0xB1);
    let confidences = scenario.confidences(&forest);
    let sizes: Vec<Vec<usize>> = vec![vec![32], vec![128, 64], vec![256, 64]];
    common::parallel_map(sizes, |hidden| {
        let distill_cfg = DistillConfig {
            hidden: hidden.clone(),
            seed: seed ^ 0xB2,
            ..cfg.distill.clone()
        };
        let surrogate = distill_forest_with_pool(&forest, &distill_cfg, scenario.x_adv.as_slice());
        let fidelity_gap = fia_models::distillation_fidelity(&forest, &surrogate, 200, seed ^ 0xB3);
        let (_, inferred) = common::run_grna(
            &scenario,
            &surrogate,
            cfg.grna.clone().with_seed(seed ^ 0xB4),
            &confidences,
        );
        DistillRow {
            hidden,
            fidelity_gap,
            grna_mse: metrics::mse_per_feature(&inferred, &scenario.truth),
        }
    })
}

/// Result of the noise-defense sweep.
#[derive(Debug, Clone)]
pub struct NoiseRow {
    /// Noise standard deviation σ.
    pub sigma: f64,
    /// ESA MSE under the defense.
    pub esa_mse: f64,
    /// GRNA-LR MSE under the defense.
    pub grna_mse: f64,
    /// Uniform random-guess baseline.
    pub rg_uniform: f64,
}

/// Sweeps the Gaussian-noise defense on Drive diagnosis at
/// `d_target = 20%` (where undefended ESA is exact, making the defense's
/// effect maximally visible).
pub fn run_noise_sweep(cfg: &ExperimentConfig) -> Vec<NoiseRow> {
    let sigmas = vec![0.0, 0.005, 0.02, 0.08];
    let seed = cfg.seed_for("ablation-noise", 0);
    let scenario = Scenario::build(PaperDataset::DriveDiagnosis, cfg.scale, 0.2, None, seed);
    let model = common::train_lr(&scenario, cfg, seed ^ 0xC1);
    let clean_conf = scenario.confidences(&model);
    let esa = EqualitySolvingAttack::new(&model, &scenario.adv_indices, &scenario.target_indices);
    common::parallel_map(sigmas, |sigma| {
        let conf = if sigma > 0.0 {
            NoiseDefense::new(sigma, seed ^ 0xC2).perturb(&clean_conf)
        } else {
            clean_conf.clone()
        };
        let esa_est = common::run_attack(&esa, &scenario.x_adv, &conf).map(|v| v.clamp(0.0, 1.0));
        let (_, grna_est) = common::run_grna(
            &scenario,
            &model,
            cfg.grna.clone().with_seed(seed ^ 0xC3),
            &conf,
        );
        NoiseRow {
            sigma,
            esa_mse: metrics::mse_per_feature(&esa_est, &scenario.truth),
            grna_mse: metrics::mse_per_feature(&grna_est, &scenario.truth),
            rg_uniform: common::random_guess_mse(&scenario, seed ^ 0xC4).0,
        }
    })
}

/// Renders the noise sweep.
pub fn render_noise(rows: &[NoiseRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.3}", r.sigma),
                crate::report::fmt_metric(r.esa_mse),
                crate::report::fmt_metric(r.grna_mse),
                crate::report::fmt_metric(r.rg_uniform),
            ]
        })
        .collect();
    crate::report::render_table(
        "Ablation: Gaussian-noise defense vs ESA & GRNA-LR (Drive, 20%)",
        &["sigma", "ESA", "GRNA-LR", "RG(Uniform)"],
        &body,
    )
}

/// Renders the pinv comparison.
pub fn render_pinv(rows: &[PinvRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.0}%", r.dtarget_fraction * 100.0),
                crate::report::fmt_metric(r.pinv_mse),
                crate::report::fmt_metric(r.ridge_mse),
            ]
        })
        .collect();
    crate::report::render_table(
        "Ablation: ESA solver — SVD pseudo-inverse vs ridge (Credit card)",
        &["d_target%", "pinv", "ridge"],
        &body,
    )
}

/// Renders the distillation sweep.
pub fn render_distill(rows: &[DistillRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:?}", r.hidden),
                crate::report::fmt_metric(r.fidelity_gap),
                crate::report::fmt_metric(r.grna_mse),
            ]
        })
        .collect();
    crate::report::render_table(
        "Ablation: RF surrogate capacity vs GRNA quality (Credit card, 30%)",
        &["Surrogate hidden", "fidelity gap", "GRNA MSE"],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinv_and_ridge_agree_at_tiny_lambda() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.dtarget_grid = vec![0.3];
        let rows = run_pinv_vs_ridge(&cfg, 1e-10);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        // With λ → 0 and full-rank normal equations both estimators
        // coincide (up to conditioning noise).
        assert!(
            (r.pinv_mse - r.ridge_mse).abs() < 0.05,
            "pinv {} vs ridge {}",
            r.pinv_mse,
            r.ridge_mse
        );
    }

    #[test]
    fn distill_sweep_produces_three_rows() {
        let cfg = ExperimentConfig::smoke();
        let rows = run_distill_sweep(&cfg);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.fidelity_gap.is_finite());
            assert!(r.grna_mse.is_finite());
        }
    }
}
