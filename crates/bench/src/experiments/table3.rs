//! Table III — ablation study of the GRN components.
//!
//! Bank marketing, LR target model, `d_target = 40%`. The six cases:
//!
//! 1. input is exclusively noise (no `x_adv`);
//! 2. input is exclusively `x_adv` (no noise);
//! 3. no convergence constraint on `x̂_target`;
//! 4. no generator (per-sample free-variable regression);
//! 5. the full GRN;
//! 6. random guess.

use crate::experiments::common;
use crate::profiles::ExperimentConfig;
use crate::scenario::Scenario;
use fia_core::{baseline, metrics, GrnaConfig};
use fia_data::PaperDataset;

/// One Table III row.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Case index (1–6, matching the paper).
    pub case: usize,
    /// `x_adv` fed to the generator?
    pub input_adv: bool,
    /// Noise fed to the generator?
    pub input_noise: bool,
    /// Variance constraint applied?
    pub constraint: bool,
    /// Generator network used?
    pub generator: bool,
    /// Measured MSE per feature.
    pub mse: f64,
}

impl Table3Row {
    /// Human-readable case description.
    pub fn description(&self) -> &'static str {
        match self.case {
            1 => "noise-only input",
            2 => "x_adv-only input",
            3 => "no output constraint",
            4 => "no generator (free variables)",
            5 => "full GRN",
            6 => "random guess",
            _ => "?",
        }
    }
}

/// Runs the six ablation cases.
pub fn run(cfg: &ExperimentConfig) -> Vec<Table3Row> {
    let seed = cfg.seed_for("table3", 0);
    let scenario = Scenario::build(PaperDataset::BankMarketing, cfg.scale, 0.4, None, seed);
    let model = common::train_lr(&scenario, cfg, seed ^ 0x91);
    let confidences = scenario.confidences(&model);

    let case_config = |case: usize| -> GrnaConfig {
        let mut c = cfg.grna.clone().with_seed(seed ^ (case as u64) << 8);
        match case {
            1 => c.use_adv_input = false,
            2 => c.use_noise_input = false,
            3 => c.use_variance_constraint = false,
            4 => c.use_generator = false,
            5 => {}
            _ => unreachable!(),
        }
        c
    };

    let mut rows: Vec<Table3Row> = common::parallel_map(vec![1usize, 2, 3, 4, 5], |case| {
        let gc = case_config(case);
        let (input_adv, input_noise, constraint, generator) = (
            gc.use_adv_input,
            gc.use_noise_input,
            gc.use_variance_constraint,
            gc.use_generator,
        );
        let (_, inferred) = common::run_grna(&scenario, &model, gc, &confidences);
        Table3Row {
            case,
            input_adv,
            input_noise,
            constraint,
            generator,
            mse: metrics::mse_per_feature(&inferred, &scenario.truth),
        }
    });

    // Case 6: random guess.
    let rg =
        baseline::random_guess_uniform(scenario.truth.rows(), scenario.truth.cols(), seed ^ 0x92);
    rows.push(Table3Row {
        case: 6,
        input_adv: false,
        input_noise: false,
        constraint: false,
        generator: false,
        mse: metrics::mse_per_feature(&rg, &scenario.truth),
    });
    rows
}

/// Renders Table III.
pub fn render(rows: &[Table3Row]) -> String {
    let mark = |b: bool| if b { "yes" } else { "no" }.to_string();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.case.to_string(),
                r.description().to_string(),
                mark(r.input_adv),
                mark(r.input_noise),
                mark(r.constraint),
                mark(r.generator),
                crate::report::fmt_metric(r.mse),
            ]
        })
        .collect();
    crate::report::render_table(
        "Table III: GRN ablation (Bank marketing, LR, d_target = 40%)",
        &[
            "Case",
            "Description",
            "x_adv",
            "Noise",
            "Constraint",
            "Generator",
            "MSE",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_grn_is_best_of_generator_cases() {
        let cfg = ExperimentConfig::smoke();
        let rows = run(&cfg);
        assert_eq!(rows.len(), 6);
        let mse = |case: usize| rows.iter().find(|r| r.case == case).unwrap().mse;
        // The paper's key ordering: the full GRN (case 5) beats the
        // noise-only ablation (case 1) and random guess (case 6).
        assert!(mse(5) < mse(1), "full {} vs noise-only {}", mse(5), mse(1));
        assert!(mse(5) < mse(6), "full {} vs random {}", mse(5), mse(6));
    }
}
