//! Fig. 8 — GRNA on the random forest: correct branching rate.
//!
//! The surrogate only approximates the forest's thresholds, so the paper
//! additionally scores GRNA-on-RF with the CBR metric: walk each *real*
//! tree along the ground-truth decision path and check whether the
//! inferred feature values take the same branch at every node testing a
//! target feature.

use crate::experiments::common;
use crate::profiles::ExperimentConfig;
use crate::scenario::Scenario;
use fia_core::baseline::{self, branch_tally_along_path};
use fia_core::metrics::CbrTally;
use fia_data::PaperDataset;
use fia_linalg::Matrix;
use fia_models::RandomForest;

/// One measured point of Fig. 8.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Dataset display name.
    pub dataset: &'static str,
    /// Swept fraction `d_target / d`.
    pub dtarget_fraction: f64,
    /// GRNA branch-consistency rate over all trees and samples.
    pub grna_cbr: Option<f64>,
    /// Random-guess branch consistency.
    pub rg_cbr: Option<f64>,
}

/// Runs the Fig. 8 sweep.
pub fn run(cfg: &ExperimentConfig) -> Vec<Fig8Row> {
    let jobs: Vec<(PaperDataset, f64)> = PaperDataset::real_world()
        .iter()
        .flat_map(|&d| cfg.dtarget_grid.iter().map(move |&f| (d, f)))
        .collect();
    common::parallel_map(jobs, |(dataset, fraction)| {
        measure_point(cfg, dataset, fraction)
    })
}

/// Measures one (dataset, fraction) point.
pub fn measure_point(cfg: &ExperimentConfig, dataset: PaperDataset, fraction: f64) -> Fig8Row {
    let trials = cfg.trials.max(1);
    let mut grna = CbrTally::default();
    let mut rg = CbrTally::default();
    for t in 0..trials {
        let seed = cfg.seed_for(&format!("fig8/{}/{fraction}", dataset.name()), t);
        let scenario = Scenario::build(dataset, cfg.scale, fraction, None, seed);
        let forest = common::train_forest(&scenario, cfg, seed ^ 0x51);
        let inferred = common::run_grna_on_forest(&scenario, &forest, cfg, seed);
        grna.merge(forest_branch_consistency(&forest, &scenario, &inferred));
        let guesses = baseline::random_guess_uniform(inferred.rows(), inferred.cols(), seed ^ 0x52);
        rg.merge(forest_branch_consistency(&forest, &scenario, &guesses));
    }
    Fig8Row {
        dataset: dataset.name(),
        dtarget_fraction: fraction,
        grna_cbr: grna.rate(),
        rg_cbr: rg.rate(),
    }
}

/// Tallies branch consistency of `inferred` target values across every
/// tree of the forest, along the ground-truth decision paths.
pub fn forest_branch_consistency(
    forest: &RandomForest,
    scenario: &Scenario,
    inferred: &Matrix,
) -> CbrTally {
    let full_inferred = scenario.assemble_with_inferred(inferred);
    let mut tally = CbrTally::default();
    for i in 0..scenario.n_predictions() {
        let x_true = scenario.prediction.sample(i);
        let x_est = full_inferred.row(i);
        for tree in forest.trees() {
            let true_path = tree.decision_path(x_true);
            tally.merge(branch_tally_along_path(
                tree,
                &true_path,
                x_est,
                &scenario.target_indices,
            ));
        }
    }
    tally
}

/// Renders the sweep.
pub fn render(rows: &[Fig8Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.to_string(),
                format!("{:.0}%", r.dtarget_fraction * 100.0),
                crate::report::fmt_opt(r.grna_cbr),
                crate::report::fmt_opt(r.rg_cbr),
            ]
        })
        .collect();
    crate::report::render_table(
        "Fig. 8: GRNA on RF — correct branching rate vs d_target",
        &["Dataset", "d_target%", "GRNA", "Random Guess"],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grna_branches_beat_random() {
        let cfg = ExperimentConfig::smoke();
        let row = measure_point(&cfg, PaperDataset::BankMarketing, 0.2);
        let (Some(g), Some(r)) = (row.grna_cbr, row.rg_cbr) else {
            panic!("no branch decisions tallied");
        };
        assert!(g > r - 0.05, "grna cbr {g} vs random {r}");
    }

    #[test]
    fn perfect_inference_gives_perfect_cbr() {
        let cfg = ExperimentConfig::smoke();
        let seed = 9;
        let scenario = Scenario::build(PaperDataset::CreditCard, cfg.scale, 0.3, None, seed);
        let forest = common::train_forest(&scenario, &cfg, seed);
        // Feed the ground truth as the "inferred" values.
        let tally = forest_branch_consistency(&forest, &scenario, &scenario.truth);
        assert_eq!(tally.rate(), Some(1.0));
    }
}
