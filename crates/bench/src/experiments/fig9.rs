//! Fig. 9 — effect of the number of accumulated predictions `n`.
//!
//! GRNA against the NN model with `n ∈ {10%, 30%, 50%} · |D|` on the two
//! synthetic datasets plus drive diagnosis and news popularity. More
//! accumulated predictions → lower MSE.

use crate::experiments::common;
use crate::profiles::ExperimentConfig;
use crate::scenario::Scenario;
use fia_core::metrics;
use fia_data::PaperDataset;

/// The four datasets of Fig. 9, in sub-figure order.
pub fn datasets() -> [PaperDataset; 4] {
    [
        PaperDataset::Synthetic1,
        PaperDataset::Synthetic2,
        PaperDataset::DriveDiagnosis,
        PaperDataset::NewsPopularity,
    ]
}

/// One measured point of Fig. 9.
#[derive(Debug, Clone)]
pub struct Fig9Row {
    /// Dataset display name.
    pub dataset: &'static str,
    /// Prediction-set size as a fraction of `|D|` (10/30/50%).
    pub n_fraction: f64,
    /// Swept fraction `d_target / d`.
    pub dtarget_fraction: f64,
    /// Number of accumulated predictions actually used.
    pub n_predictions: usize,
    /// GRNA-NN MSE per feature.
    pub grna_mse: f64,
    /// Uniform random-guess baseline.
    pub rg_uniform: f64,
}

/// Runs the Fig. 9 sweep.
pub fn run(cfg: &ExperimentConfig) -> Vec<Fig9Row> {
    let n_fractions = [0.1, 0.3, 0.5];
    let jobs: Vec<(PaperDataset, f64, f64)> = datasets()
        .iter()
        .flat_map(|&d| {
            n_fractions
                .iter()
                .flat_map(move |&nf| cfg.dtarget_grid.iter().map(move |&f| (d, nf, f)))
        })
        .collect();
    common::parallel_map(jobs, |(dataset, nf, fraction)| {
        measure_point(cfg, dataset, nf, fraction)
    })
}

/// Measures one (dataset, n-fraction, d_target-fraction) point.
pub fn measure_point(
    cfg: &ExperimentConfig,
    dataset: PaperDataset,
    n_fraction: f64,
    fraction: f64,
) -> Fig9Row {
    let trials = cfg.trials.max(1);
    let mut grna_sum = 0.0;
    let mut rg_sum = 0.0;
    let mut n_pred = 0;
    for t in 0..trials {
        let seed = cfg.seed_for(
            &format!("fig9/{}/{n_fraction}/{fraction}", dataset.name()),
            t,
        );
        let scenario = Scenario::build(dataset, cfg.scale, fraction, Some(n_fraction), seed);
        let nn = common::train_mlp(&scenario, cfg, seed ^ 0x61);
        let conf = scenario.confidences(&nn);
        let (_, inferred) =
            common::run_grna(&scenario, &nn, cfg.grna.clone().with_seed(seed), &conf);
        grna_sum += metrics::mse_per_feature(&inferred, &scenario.truth);
        rg_sum += common::random_guess_mse(&scenario, seed ^ 0x62).0;
        n_pred = scenario.n_predictions();
    }
    let n = trials as f64;
    Fig9Row {
        dataset: dataset.name(),
        n_fraction,
        dtarget_fraction: fraction,
        n_predictions: n_pred,
        grna_mse: grna_sum / n,
        rg_uniform: rg_sum / n,
    }
}

/// Renders the sweep.
pub fn render(rows: &[Fig9Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.to_string(),
                format!("NN-{:.0}%", r.n_fraction * 100.0),
                format!("{:.0}%", r.dtarget_fraction * 100.0),
                r.n_predictions.to_string(),
                crate::report::fmt_metric(r.grna_mse),
                crate::report::fmt_metric(r.rg_uniform),
            ]
        })
        .collect();
    crate::report::render_table(
        "Fig. 9: effect of the number of predictions (GRNA-NN)",
        &["Dataset", "Curve", "d_target%", "n", "GRNA", "RG(Uniform)"],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_predictions_do_not_hurt_much() {
        // At smoke scale we only assert both runs complete with finite
        // results and that n scales with the fraction; the monotone-MSE
        // trend is asserted at quick scale by the integration tests.
        let cfg = ExperimentConfig::smoke();
        let small = measure_point(&cfg, PaperDataset::Synthetic1, 0.1, 0.3);
        let large = measure_point(&cfg, PaperDataset::Synthetic1, 0.5, 0.3);
        assert!(large.n_predictions > 3 * small.n_predictions);
        assert!(small.grna_mse.is_finite() && large.grna_mse.is_finite());
    }
}
