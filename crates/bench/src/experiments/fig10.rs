//! Fig. 10 — per-feature reconstruction error vs data correlations.
//!
//! Two panels: Bank marketing + LR at `d_target = 40%`, Credit card + RF
//! at `d_target = 30%`. Each target feature is annotated with its
//! Eqn (16) correlation to the adversary's features and its Eqn (17)
//! correlation to the prediction outputs; weakly-correlated features
//! should reconstruct worse.

use crate::experiments::common;
use crate::profiles::ExperimentConfig;
use crate::scenario::Scenario;
use fia_core::{correlation_report, metrics};
use fia_data::PaperDataset;
use fia_linalg::vecops::pearson;

/// One target feature's row in a Fig. 10 panel.
#[derive(Debug, Clone)]
pub struct Fig10Row {
    /// Panel name (dataset + model).
    pub panel: &'static str,
    /// Position of the feature within the target block.
    pub feature_pos: usize,
    /// Global feature index.
    pub global_index: usize,
    /// Per-feature reconstruction MSE.
    pub mse: f64,
    /// Ground-truth variance of the feature (for normalization).
    pub variance: f64,
    /// Eqn (16): mean |corr| with the adversary's features.
    pub corr_adv: f64,
    /// Eqn (17): mean |corr| with the confidence scores.
    pub corr_pred: f64,
}

impl Fig10Row {
    /// Variance-normalized error `MSE / Var(x)` — ≈ `1 − R²` of the
    /// reconstruction. On features with heterogeneous spreads the raw MSE
    /// conflates "hard to infer" with "low variance"; this ratio isolates
    /// reconstruction quality (1.0 = no better than predicting the mean).
    pub fn relative_mse(&self) -> f64 {
        if self.variance > 1e-12 {
            self.mse / self.variance
        } else {
            f64::NAN
        }
    }
}

/// Runs both Fig. 10 panels.
pub fn run(cfg: &ExperimentConfig) -> Vec<Fig10Row> {
    let mut rows = panel_lr(cfg);
    rows.extend(panel_rf(cfg));
    rows
}

/// Repetitions averaged inside each panel. The per-feature MSEs of a
/// single GRNA run are noisy; the correlation-vs-error relationship the
/// figure demonstrates needs a few repetitions even at small scale.
const PANEL_REPS: usize = 3;

/// Panel (a): Bank marketing, LR model, d_target = 40%.
pub fn panel_lr(cfg: &ExperimentConfig) -> Vec<Fig10Row> {
    // The feature split stays fixed across repetitions (the panel is
    // *about* specific features); only training/attack seeds vary.
    let split_seed = cfg.seed_for("fig10/lr", 0);
    let scenario = Scenario::build(
        PaperDataset::BankMarketing,
        cfg.scale,
        0.4,
        None,
        split_seed,
    );
    let mut rows: Option<Vec<Fig10Row>> = None;
    for rep in 0..PANEL_REPS {
        let seed = cfg.seed_for("fig10/lr", rep) ^ 0x71;
        let model = common::train_lr(&scenario, cfg, seed);
        let conf = scenario.confidences(&model);
        let (_, inferred) =
            common::run_grna(&scenario, &model, cfg.grna.clone().with_seed(seed), &conf);
        accumulate_rows(
            &mut rows,
            "Bank marketing (LR)",
            &scenario,
            &inferred,
            &conf,
        );
    }
    finish_rows(rows)
}

/// Panel (b): Credit card, RF model, d_target = 30%.
pub fn panel_rf(cfg: &ExperimentConfig) -> Vec<Fig10Row> {
    let split_seed = cfg.seed_for("fig10/rf", 0);
    let scenario = Scenario::build(PaperDataset::CreditCard, cfg.scale, 0.3, None, split_seed);
    let mut rows: Option<Vec<Fig10Row>> = None;
    for rep in 0..PANEL_REPS {
        let seed = cfg.seed_for("fig10/rf", rep) ^ 0x72;
        let forest = common::train_forest(&scenario, cfg, seed);
        let conf = scenario.confidences(&forest);
        let inferred = common::run_grna_on_forest(&scenario, &forest, cfg, seed);
        accumulate_rows(&mut rows, "Credit card (RF)", &scenario, &inferred, &conf);
    }
    finish_rows(rows)
}

fn accumulate_rows(
    acc: &mut Option<Vec<Fig10Row>>,
    panel: &'static str,
    scenario: &Scenario,
    inferred: &fia_linalg::Matrix,
    confidences: &fia_linalg::Matrix,
) {
    let rows = build_rows(panel, scenario, inferred, confidences);
    match acc {
        None => *acc = Some(rows),
        Some(prev) => {
            for (p, r) in prev.iter_mut().zip(rows) {
                p.mse += r.mse;
                p.variance += r.variance;
                p.corr_adv += r.corr_adv;
                p.corr_pred += r.corr_pred;
            }
        }
    }
}

fn finish_rows(acc: Option<Vec<Fig10Row>>) -> Vec<Fig10Row> {
    let mut rows = acc.expect("at least one repetition");
    for r in &mut rows {
        r.mse /= PANEL_REPS as f64;
        r.variance /= PANEL_REPS as f64;
        r.corr_adv /= PANEL_REPS as f64;
        r.corr_pred /= PANEL_REPS as f64;
    }
    rows
}

fn build_rows(
    panel: &'static str,
    scenario: &Scenario,
    inferred: &fia_linalg::Matrix,
    confidences: &fia_linalg::Matrix,
) -> Vec<Fig10Row> {
    let mse = metrics::per_feature_mse(inferred, &scenario.truth);
    let report = correlation_report(&scenario.x_adv, &scenario.truth, confidences);
    (0..scenario.d_target())
        .map(|k| Fig10Row {
            panel,
            feature_pos: k,
            global_index: scenario.target_indices[k],
            mse: mse[k],
            variance: fia_linalg::vecops::variance(&scenario.truth.col(k)),
            corr_adv: report.with_adversary[k],
            corr_pred: report.with_predictions[k],
        })
        .collect()
}

/// Correlation between per-feature *raw* MSE and the Eqn (16) diagnostic.
pub fn mse_correlation_tradeoff(rows: &[Fig10Row]) -> f64 {
    let mses: Vec<f64> = rows.iter().map(|r| r.mse).collect();
    let corrs: Vec<f64> = rows.iter().map(|r| r.corr_adv).collect();
    pearson(&mses, &corrs)
}

/// Correlation between *variance-normalized* MSE and the Eqn (16)
/// diagnostic — the paper's qualitative claim ("a weaker correlation …
/// results in a lower inference accuracy") in a form that isn't
/// confounded by heterogeneous feature variances: expected *negative*.
pub fn relative_mse_correlation_tradeoff(rows: &[Fig10Row]) -> f64 {
    let pairs: Vec<(f64, f64)> = rows
        .iter()
        .filter(|r| r.relative_mse().is_finite())
        .map(|r| (r.relative_mse(), r.corr_adv))
        .collect();
    let rel: Vec<f64> = pairs.iter().map(|p| p.0).collect();
    let corrs: Vec<f64> = pairs.iter().map(|p| p.1).collect();
    pearson(&rel, &corrs)
}

/// Renders both panels.
pub fn render(rows: &[Fig10Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.panel.to_string(),
                format!("{}: f{}", r.feature_pos, r.global_index),
                crate::report::fmt_metric(r.mse),
                crate::report::fmt_metric(r.relative_mse()),
                crate::report::fmt_metric(r.corr_adv),
                crate::report::fmt_metric(r.corr_pred),
            ]
        })
        .collect();
    crate::report::render_table(
        "Fig. 10: per-feature MSE vs correlations (Eqns 16-17)",
        &[
            "Panel",
            "Feature",
            "MSE",
            "MSE/Var",
            "corr(x_adv)",
            "corr(pred)",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lr_panel_has_one_row_per_target_feature() {
        let cfg = ExperimentConfig::smoke();
        let rows = panel_lr(&cfg);
        // Bank marketing: 20 features, 40% → 8 target features.
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert!(r.mse.is_finite());
            assert!((0.0..=1.0).contains(&r.corr_adv));
            assert!((0.0..=1.0).contains(&r.corr_pred));
        }
    }
}
