//! Fig. 6 — Path restriction attack: CBR vs `d_target`.

use crate::experiments::common;
use crate::profiles::ExperimentConfig;
use crate::scenario::Scenario;
use fia_core::{baseline, metrics::CbrTally, PathRestrictionAttack};
use fia_data::PaperDataset;
use fia_models::DecisionTree;
use rand::{rngs::StdRng, SeedableRng};

/// One measured point of Fig. 6.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Dataset display name.
    pub dataset: &'static str,
    /// Swept fraction `d_target / d`.
    pub dtarget_fraction: f64,
    /// PRA correct branching rate.
    pub pra_cbr: Option<f64>,
    /// Random-path baseline CBR.
    pub rg_cbr: Option<f64>,
    /// Mean number of candidate paths after restriction (`n_r`).
    pub mean_restricted: f64,
    /// Extension beyond the paper: MSE of PRA's feasible-interval point
    /// estimates, comparable with ESA/GRNA (Fig. 5/7 metric).
    pub pra_mse: f64,
    /// Uniform random-guess MSE baseline for the extension column.
    pub rg_mse: f64,
}

/// Runs the Fig. 6 sweep.
pub fn run(cfg: &ExperimentConfig) -> Vec<Fig6Row> {
    let jobs: Vec<(PaperDataset, f64)> = PaperDataset::real_world()
        .iter()
        .flat_map(|&d| cfg.dtarget_grid.iter().map(move |&f| (d, f)))
        .collect();
    common::parallel_map(jobs, |(dataset, fraction)| {
        measure_point(cfg, dataset, fraction)
    })
}

fn measure_point(cfg: &ExperimentConfig, dataset: PaperDataset, fraction: f64) -> Fig6Row {
    let trials = cfg.trials.max(1);
    let mut pra = CbrTally::default();
    let mut rg = CbrTally::default();
    let mut restricted_sum = 0.0;
    let mut restricted_count = 0usize;
    let mut pra_mse_sum = 0.0;
    let mut rg_mse_sum = 0.0;
    for t in 0..trials {
        let seed = cfg.seed_for(&format!("fig6/{}/{fraction}", dataset.name()), t);
        let scenario = Scenario::build(dataset, cfg.scale, fraction, None, seed);
        let mut tree_rng = StdRng::seed_from_u64(seed ^ 0x77);
        let tree = DecisionTree::fit(&scenario.train, &cfg.tree, &mut tree_rng);
        let attack =
            PathRestrictionAttack::new(&tree, &scenario.adv_indices, &scenario.target_indices);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x88);
        let mut estimates =
            fia_linalg::Matrix::zeros(scenario.n_predictions(), scenario.d_target());
        for i in 0..scenario.n_predictions() {
            let x_full = scenario.prediction.sample(i);
            // The protocol reveals the predicted class (one-hot scores).
            let class = tree.predict_one(x_full);
            let x_adv: Vec<f64> = scenario.adv_indices.iter().map(|&f| x_full[f]).collect();
            if let Some(inferred) = attack.infer(&x_adv, class, &mut rng) {
                pra.merge(attack.evaluate_cbr(&inferred, x_full));
                restricted_sum += inferred.n_restricted as f64;
                restricted_count += 1;
            }
            // Extension: point estimates from the constrained intervals.
            let est = attack.infer_values(&x_adv, class, 0.0, 1.0, &mut rng);
            estimates.row_mut(i).copy_from_slice(&est);
            rg.merge(baseline::random_path_cbr(
                &tree,
                x_full,
                &scenario.target_indices,
                &mut rng,
            ));
        }
        pra_mse_sum += fia_core::metrics::mse_per_feature(&estimates, &scenario.truth);
        rg_mse_sum += common::random_guess_mse(&scenario, seed ^ 0x99).0;
    }
    Fig6Row {
        dataset: dataset.name(),
        dtarget_fraction: fraction,
        pra_cbr: pra.rate(),
        rg_cbr: rg.rate(),
        mean_restricted: if restricted_count > 0 {
            restricted_sum / restricted_count as f64
        } else {
            0.0
        },
        pra_mse: pra_mse_sum / trials as f64,
        rg_mse: rg_mse_sum / trials as f64,
    }
}

/// Renders the sweep.
pub fn render(rows: &[Fig6Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.to_string(),
                format!("{:.0}%", r.dtarget_fraction * 100.0),
                crate::report::fmt_opt(r.pra_cbr),
                crate::report::fmt_opt(r.rg_cbr),
                format!("{:.2}", r.mean_restricted),
                crate::report::fmt_metric(r.pra_mse),
                crate::report::fmt_metric(r.rg_mse),
            ]
        })
        .collect();
    crate::report::render_table(
        "Fig. 6: PRA — correct branching rate vs d_target (+MSE extension)",
        &[
            "Dataset",
            "d_target%",
            "PRA",
            "Random Guess",
            "mean n_r",
            "PRA-MSE*",
            "RG-MSE",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pra_beats_random_guess() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.dtarget_grid = vec![0.4];
        let rows = run(&cfg);
        assert_eq!(rows.len(), 4);
        // At smoke scale a depth-5 tree may not split on any target
        // feature for some dataset/seed (the paper notes the DT "only
        // selects informative features during training"), leaving an
        // empty tally. Require usable tallies on most datasets and PRA ≥
        // random on each of them.
        let mut usable = 0;
        for r in &rows {
            if let (Some(pra), Some(rg)) = (r.pra_cbr, r.rg_cbr) {
                usable += 1;
                assert!(pra >= rg - 0.05, "{}: pra {pra} vs random {rg}", r.dataset);
                assert!(r.mean_restricted >= 1.0);
            }
        }
        assert!(usable >= 2, "only {usable} datasets produced tallies");
    }
}
