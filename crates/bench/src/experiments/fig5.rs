//! Fig. 5 — Equality solving attack: MSE per feature vs `d_target`.
//!
//! For each real-world dataset and each `d_target` fraction, trains an LR
//! model and runs ESA plus the two random-guess baselines. The `exact`
//! flag marks the paper's threshold condition `d_target ≤ c − 1`
//! (rendered as 'T' in the sub-figures), where the MSE must be ~0.

use crate::experiments::common;
use crate::profiles::ExperimentConfig;
use crate::scenario::Scenario;
use fia_core::{metrics, EqualitySolvingAttack};
use fia_data::PaperDataset;

/// One measured point of Fig. 5.
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// Dataset display name.
    pub dataset: &'static str,
    /// Swept fraction `d_target / d`.
    pub dtarget_fraction: f64,
    /// Absolute `d_target`.
    pub d_target: usize,
    /// ESA MSE per feature.
    pub esa_mse: f64,
    /// Uniform random-guess baseline MSE.
    pub rg_uniform: f64,
    /// Gaussian random-guess baseline MSE.
    pub rg_gaussian: f64,
    /// Eqn (15) upper bound on the ESA MSE.
    pub upper_bound: f64,
    /// Whether `d_target ≤ c − 1` (exact recovery expected).
    pub exact: bool,
}

/// Runs the Fig. 5 sweep over the four real-world datasets.
pub fn run(cfg: &ExperimentConfig) -> Vec<Fig5Row> {
    let jobs: Vec<(PaperDataset, f64)> = PaperDataset::real_world()
        .iter()
        .flat_map(|&d| cfg.dtarget_grid.iter().map(move |&f| (d, f)))
        .collect();
    common::parallel_map(jobs, |(dataset, fraction)| {
        measure_point(cfg, dataset, fraction)
    })
}

/// Measures one (dataset, fraction) point, averaged over trials.
pub fn measure_point(cfg: &ExperimentConfig, dataset: PaperDataset, fraction: f64) -> Fig5Row {
    let trials = cfg.trials.max(1);
    let mut esa_sum = 0.0;
    let mut rgu_sum = 0.0;
    let mut rgg_sum = 0.0;
    let mut bound_sum = 0.0;
    let mut d_target = 0;
    let mut exact = false;
    for t in 0..trials {
        let seed = cfg.seed_for(&format!("fig5/{}/{fraction}", dataset.name()), t);
        let scenario = Scenario::build(dataset, cfg.scale, fraction, None, seed);
        let model = common::train_lr(&scenario, cfg, seed ^ 0x11);
        let attack =
            EqualitySolvingAttack::new(&model, &scenario.adv_indices, &scenario.target_indices);
        let confidences = scenario.confidences(&model);
        let inferred = common::run_attack(&attack, &scenario.x_adv, &confidences);
        esa_sum += metrics::mse_per_feature(&inferred, &scenario.truth);
        let (u, g) = common::random_guess_mse(&scenario, seed ^ 0x22);
        rgu_sum += u;
        rgg_sum += g;
        bound_sum += metrics::esa_upper_bound(&scenario.truth);
        d_target = scenario.d_target();
        exact = attack.exact_recovery_expected();
    }
    let n = trials as f64;
    Fig5Row {
        dataset: dataset.name(),
        dtarget_fraction: fraction,
        d_target,
        esa_mse: esa_sum / n,
        rg_uniform: rgu_sum / n,
        rg_gaussian: rgg_sum / n,
        upper_bound: bound_sum / n,
        exact,
    }
}

/// Renders the sweep as one table (the paper splits it into four
/// sub-figures).
pub fn render(rows: &[Fig5Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.to_string(),
                format!(
                    "{:.0}%{}",
                    r.dtarget_fraction * 100.0,
                    if r.exact { " (T)" } else { "" }
                ),
                r.d_target.to_string(),
                crate::report::fmt_metric(r.esa_mse),
                crate::report::fmt_metric(r.rg_uniform),
                crate::report::fmt_metric(r.rg_gaussian),
                crate::report::fmt_metric(r.upper_bound),
            ]
        })
        .collect();
    crate::report::render_table(
        "Fig. 5: ESA — MSE per feature vs d_target",
        &[
            "Dataset",
            "d_target%",
            "d_target",
            "ESA",
            "RG(Uniform)",
            "RG(Gaussian)",
            "Bound(Eq.15)",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_has_expected_shape() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.dtarget_grid = vec![0.2];
        let rows = run(&cfg);
        assert_eq!(rows.len(), 4); // four datasets × one fraction
        for r in &rows {
            assert!(r.esa_mse.is_finite());
            assert!(r.rg_uniform > 0.0);
        }
        // The paper's Fig. 5 claim: where the estimate stays
        // well-determined — Credit card and Drive diagnosis ("e.g., in
        // Fig. 5b and 5c") — ESA is greatly superior to random guess. On
        // the 2-class Bank dataset at high d_target the paper's own plot
        // shows ESA *above* the baselines, so no assertion there.
        for name in ["Credit card", "Drive diagnosis"] {
            let r = rows.iter().find(|r| r.dataset == name).unwrap();
            assert!(
                r.esa_mse < r.rg_uniform,
                "{}: esa {} vs rg {}",
                r.dataset,
                r.esa_mse,
                r.rg_uniform
            );
        }
    }

    #[test]
    fn exact_threshold_on_drive() {
        // Drive diagnosis has 11 classes; at 20% of 48 features
        // d_target = 10 = c − 1 → exact, MSE ≈ 0.
        let mut cfg = ExperimentConfig::smoke();
        cfg.dtarget_grid = vec![0.2];
        let seed = cfg.seed_for("fig5/Drive diagnosis/0.2", 0);
        let scenario = Scenario::build(PaperDataset::DriveDiagnosis, cfg.scale, 0.2, None, seed);
        assert_eq!(scenario.d_target(), 10);
        let row = measure_point(&cfg, PaperDataset::DriveDiagnosis, 0.2);
        assert!(row.exact);
        assert!(row.esa_mse < 1e-6, "exact recovery mse {}", row.esa_mse);
    }
}
