//! Fig. 11 — countermeasure evaluation.
//!
//! * (a)–(b): confidence rounding vs ESA on Bank marketing and Drive
//!   diagnosis — rounding to 0.1 pushes ESA beyond random guess, rounding
//!   to 0.001 barely matters.
//! * (c)–(d): the same rounding grid vs GRNA-LR — GRNA is insensitive.
//! * (e)–(f): dropout-trained NN vs GRNA-NN on Credit card and News
//!   popularity — dropout degrades the attack only slightly.

use crate::experiments::common;
use crate::profiles::ExperimentConfig;
use crate::scenario::Scenario;
use fia_core::{metrics, EqualitySolvingAttack};
use fia_data::PaperDataset;
use fia_defense::{dropout_defended_mlp, RoundingDefense};

/// Rounding policy labels used in the figure legends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rounding {
    /// Round down to one digit (0.1).
    Coarse,
    /// Round down to three digits (0.001).
    Fine,
    /// No rounding.
    None,
}

impl Rounding {
    /// All three legend entries.
    pub fn all() -> [Rounding; 3] {
        [Rounding::Coarse, Rounding::Fine, Rounding::None]
    }

    /// Legend label.
    pub fn label(&self) -> &'static str {
        match self {
            Rounding::Coarse => "Round 0.1",
            Rounding::Fine => "Round 0.001",
            Rounding::None => "No Round",
        }
    }

    fn apply(&self, scores: &fia_linalg::Matrix) -> fia_linalg::Matrix {
        match self {
            Rounding::Coarse => RoundingDefense::coarse().round_matrix(scores),
            Rounding::Fine => RoundingDefense::fine().round_matrix(scores),
            Rounding::None => scores.clone(),
        }
    }
}

/// One measured point of panels (a)–(d).
#[derive(Debug, Clone)]
pub struct RoundingRow {
    /// Dataset display name.
    pub dataset: &'static str,
    /// Attack ("ESA" or "GRNA-LR").
    pub attack: &'static str,
    /// Rounding policy.
    pub rounding: Rounding,
    /// Swept fraction `d_target / d`.
    pub dtarget_fraction: f64,
    /// Attack MSE per feature under the defense.
    pub mse: f64,
    /// Uniform random-guess baseline.
    pub rg_uniform: f64,
}

/// Panels (a)–(b): rounding vs ESA on Bank and Drive.
pub fn run_rounding_esa(cfg: &ExperimentConfig) -> Vec<RoundingRow> {
    let datasets = [PaperDataset::BankMarketing, PaperDataset::DriveDiagnosis];
    let jobs: Vec<(PaperDataset, Rounding, f64)> = datasets
        .iter()
        .flat_map(|&d| {
            Rounding::all()
                .into_iter()
                .flat_map(move |r| cfg.dtarget_grid.iter().map(move |&f| (d, r, f)))
        })
        .collect();
    common::parallel_map(jobs, |(dataset, rounding, fraction)| {
        let trials = cfg.trials.max(1);
        let mut mse_sum = 0.0;
        let mut rg_sum = 0.0;
        for t in 0..trials {
            let seed = cfg.seed_for(
                &format!("fig11ab/{}/{}/{fraction}", dataset.name(), rounding.label()),
                t,
            );
            let scenario = Scenario::build(dataset, cfg.scale, fraction, None, seed);
            let model = common::train_lr(&scenario, cfg, seed ^ 0x81);
            let attack =
                EqualitySolvingAttack::new(&model, &scenario.adv_indices, &scenario.target_indices);
            let conf = rounding.apply(&scenario.confidences(&model));
            let inferred = common::run_attack(&attack, &scenario.x_adv, &conf);
            // Clamp wild estimates into the known value range before
            // scoring, as any real adversary would.
            let inferred = inferred.map(|v| v.clamp(0.0, 1.0));
            mse_sum += metrics::mse_per_feature(&inferred, &scenario.truth);
            rg_sum += common::random_guess_mse(&scenario, seed ^ 0x82).0;
        }
        RoundingRow {
            dataset: dataset.name(),
            attack: "ESA",
            rounding,
            dtarget_fraction: fraction,
            mse: mse_sum / trials as f64,
            rg_uniform: rg_sum / trials as f64,
        }
    })
}

/// Panels (c)–(d): rounding vs GRNA-LR on Bank and Drive.
pub fn run_rounding_grna(cfg: &ExperimentConfig) -> Vec<RoundingRow> {
    let datasets = [PaperDataset::BankMarketing, PaperDataset::DriveDiagnosis];
    let jobs: Vec<(PaperDataset, Rounding, f64)> = datasets
        .iter()
        .flat_map(|&d| {
            Rounding::all()
                .into_iter()
                .flat_map(move |r| cfg.dtarget_grid.iter().map(move |&f| (d, r, f)))
        })
        .collect();
    common::parallel_map(jobs, |(dataset, rounding, fraction)| {
        let trials = cfg.trials.max(1);
        let mut mse_sum = 0.0;
        let mut rg_sum = 0.0;
        for t in 0..trials {
            let seed = cfg.seed_for(
                &format!("fig11cd/{}/{}/{fraction}", dataset.name(), rounding.label()),
                t,
            );
            let scenario = Scenario::build(dataset, cfg.scale, fraction, None, seed);
            let model = common::train_lr(&scenario, cfg, seed ^ 0x83);
            let conf = rounding.apply(&scenario.confidences(&model));
            let (_, inferred) =
                common::run_grna(&scenario, &model, cfg.grna.clone().with_seed(seed), &conf);
            mse_sum += metrics::mse_per_feature(&inferred, &scenario.truth);
            rg_sum += common::random_guess_mse(&scenario, seed ^ 0x84).0;
        }
        RoundingRow {
            dataset: dataset.name(),
            attack: "GRNA-LR",
            rounding,
            dtarget_fraction: fraction,
            mse: mse_sum / trials as f64,
            rg_uniform: rg_sum / trials as f64,
        }
    })
}

/// One measured point of panels (e)–(f).
#[derive(Debug, Clone)]
pub struct DropoutRow {
    /// Dataset display name.
    pub dataset: &'static str,
    /// `true` when the NN was trained with dropout.
    pub dropout: bool,
    /// Swept fraction `d_target / d`.
    pub dtarget_fraction: f64,
    /// GRNA-NN MSE per feature.
    pub mse: f64,
    /// Uniform random-guess baseline.
    pub rg_uniform: f64,
}

/// Panels (e)–(f): dropout vs GRNA-NN on Credit and News.
pub fn run_dropout(cfg: &ExperimentConfig) -> Vec<DropoutRow> {
    let datasets = [PaperDataset::CreditCard, PaperDataset::NewsPopularity];
    let jobs: Vec<(PaperDataset, bool, f64)> = datasets
        .iter()
        .flat_map(|&d| {
            [true, false]
                .into_iter()
                .flat_map(move |dr| cfg.dtarget_grid.iter().map(move |&f| (d, dr, f)))
        })
        .collect();
    common::parallel_map(jobs, |(dataset, dropout, fraction)| {
        let trials = cfg.trials.max(1);
        let mut mse_sum = 0.0;
        let mut rg_sum = 0.0;
        for t in 0..trials {
            let seed = cfg.seed_for(
                &format!("fig11ef/{}/{dropout}/{fraction}", dataset.name()),
                t,
            );
            let scenario = Scenario::build(dataset, cfg.scale, fraction, None, seed);
            let model = if dropout {
                let base = cfg.mlp.clone().with_seed(seed ^ 0x85);
                dropout_defended_mlp(&scenario.train, &base, 0.5)
            } else {
                common::train_mlp(&scenario, cfg, seed ^ 0x85)
            };
            let conf = scenario.confidences(&model);
            let (_, inferred) =
                common::run_grna(&scenario, &model, cfg.grna.clone().with_seed(seed), &conf);
            mse_sum += metrics::mse_per_feature(&inferred, &scenario.truth);
            rg_sum += common::random_guess_mse(&scenario, seed ^ 0x86).0;
        }
        DropoutRow {
            dataset: dataset.name(),
            dropout,
            dtarget_fraction: fraction,
            mse: mse_sum / trials as f64,
            rg_uniform: rg_sum / trials as f64,
        }
    })
}

/// Renders panels (a)–(d).
pub fn render_rounding(rows: &[RoundingRow], title: &str) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.to_string(),
                r.attack.to_string(),
                r.rounding.label().to_string(),
                format!("{:.0}%", r.dtarget_fraction * 100.0),
                crate::report::fmt_metric(r.mse),
                crate::report::fmt_metric(r.rg_uniform),
            ]
        })
        .collect();
    crate::report::render_table(
        title,
        &[
            "Dataset",
            "Attack",
            "Rounding",
            "d_target%",
            "MSE",
            "RG(Uniform)",
        ],
        &body,
    )
}

/// Renders panels (e)–(f).
pub fn render_dropout(rows: &[DropoutRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.to_string(),
                if r.dropout { "NN (Dropout)" } else { "NN" }.to_string(),
                format!("{:.0}%", r.dtarget_fraction * 100.0),
                crate::report::fmt_metric(r.mse),
                crate::report::fmt_metric(r.rg_uniform),
            ]
        })
        .collect();
    crate::report::render_table(
        "Fig. 11e-f: dropout defense vs GRNA-NN",
        &["Dataset", "Model", "d_target%", "MSE", "RG(Uniform)"],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coarse_rounding_breaks_esa_fine_does_not() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.dtarget_grid = vec![0.3];
        let rows = run_rounding_esa(&cfg);
        let find = |ds: &str, r: Rounding| {
            rows.iter()
                .find(|row| row.dataset == ds && row.rounding == r)
                .expect("row present")
        };
        // Drive diagnosis is where ESA is strong undefended, so the
        // defense's effect is cleanly visible there (Fig. 11b). On Bank
        // the undefended attack is already weak at this d_target and the
        // paper calls the rounded result "relatively stochastic", so we
        // only require the defended attack to sit at random-guess level.
        {
            let coarse = find("Drive diagnosis", Rounding::Coarse);
            let fine = find("Drive diagnosis", Rounding::Fine);
            let none = find("Drive diagnosis", Rounding::None);
            assert!(
                coarse.mse > 2.0 * none.mse,
                "coarse {} vs none {}",
                coarse.mse,
                none.mse
            );
            assert!(
                fine.mse < coarse.mse,
                "fine {} vs coarse {}",
                fine.mse,
                coarse.mse
            );
        }
        for ds in ["Bank marketing", "Drive diagnosis"] {
            let coarse = find(ds, Rounding::Coarse);
            assert!(
                coarse.mse > 0.75 * coarse.rg_uniform,
                "{ds}: defended attack {} still beats random {}",
                coarse.mse,
                coarse.rg_uniform
            );
        }
    }
}
