//! Helpers shared by the per-figure experiment modules.

use crate::profiles::ExperimentConfig;
use crate::scenario::Scenario;
use fia_core::{
    baseline, metrics, Attack, AttackEngine, Grna, GrnaConfig, QueryBatch, TrainedGenerator,
};
use fia_linalg::Matrix;
use fia_models::{
    distill_forest_with_pool, DifferentiableModel, ForestConfig, LogisticRegression, Mlp,
    RandomForest,
};

/// Trains the LR model for a scenario (binary or multinomial per `c`).
pub fn train_lr(scenario: &Scenario, cfg: &ExperimentConfig, seed: u64) -> LogisticRegression {
    let mut lr_cfg = cfg.lr.clone();
    lr_cfg.seed = seed;
    LogisticRegression::fit(&scenario.train, &lr_cfg)
}

/// Trains the NN model for a scenario.
pub fn train_mlp(scenario: &Scenario, cfg: &ExperimentConfig, seed: u64) -> Mlp {
    let mlp_cfg = cfg.mlp.clone().with_seed(seed);
    Mlp::fit(&scenario.train, &mlp_cfg)
}

/// Trains the RF model for a scenario.
pub fn train_forest(scenario: &Scenario, cfg: &ExperimentConfig, seed: u64) -> RandomForest {
    let forest_cfg = ForestConfig {
        seed,
        ..cfg.forest.clone()
    };
    RandomForest::fit(&scenario.train, &forest_cfg)
}

/// Dispatches one batch-first attack over a scenario's accumulated
/// `(x_adv, v)` stream through the [`AttackEngine`] and returns the
/// estimates.
pub fn run_attack(attack: &dyn Attack, x_adv: &Matrix, confidences: &Matrix) -> Matrix {
    AttackEngine::new()
        .run(attack, &QueryBatch::new(x_adv.clone(), confidences.clone()))
        .estimates
}

/// Runs GRNA end-to-end against any differentiable model: trains the
/// generator on the scenario's accumulated predictions and returns the
/// inferred target features for the whole prediction set.
pub fn run_grna<M: DifferentiableModel>(
    scenario: &Scenario,
    model: &M,
    grna_cfg: GrnaConfig,
    confidences: &Matrix,
) -> (TrainedGenerator, Matrix) {
    let attack = Grna::new(
        model,
        &scenario.adv_indices,
        &scenario.target_indices,
        grna_cfg,
    );
    let generator = attack.train(&scenario.x_adv, confidences);
    let inferred = generator.infer(&scenario.x_adv, 0xFEED);
    (generator, inferred)
}

/// Distills the forest and runs GRNA against the surrogate (Section V-B).
///
/// Dummy inputs are bootstrapped from the adversary's own observed
/// feature values ([`fia_models::distill_forest_with_pool`]) — data the
/// threat model already grants it — which keeps the surrogate faithful in
/// the region the attack actually probes.
pub fn run_grna_on_forest(
    scenario: &Scenario,
    forest: &RandomForest,
    cfg: &ExperimentConfig,
    seed: u64,
) -> Matrix {
    let mut distill_cfg = cfg.distill.clone();
    distill_cfg.seed = seed;
    let surrogate = distill_forest_with_pool(forest, &distill_cfg, scenario.x_adv.as_slice());
    // The observed confidences come from the *real* forest — the
    // surrogate only provides the differentiable path.
    let confidences = scenario.confidences(forest);
    let (_, inferred) = run_grna(
        scenario,
        &surrogate,
        cfg.grna.clone().with_seed(seed),
        &confidences,
    );
    inferred
}

/// Both random-guess baselines' MSE against the scenario truth.
pub fn random_guess_mse(scenario: &Scenario, seed: u64) -> (f64, f64) {
    let n = scenario.truth.rows();
    let d = scenario.truth.cols();
    let uniform = baseline::random_guess_uniform(n, d, seed);
    let gaussian = baseline::random_guess_gaussian(n, d, seed ^ 0x6A55);
    (
        metrics::mse_per_feature(&uniform, &scenario.truth),
        metrics::mse_per_feature(&gaussian, &scenario.truth),
    )
}

/// Averages `f` over `trials` runs with per-trial seeds.
pub fn average_over_trials(
    cfg: &ExperimentConfig,
    tag: &str,
    mut f: impl FnMut(u64) -> f64,
) -> f64 {
    let trials = cfg.trials.max(1);
    let sum: f64 = (0..trials).map(|t| f(cfg.seed_for(tag, t))).sum();
    sum / trials as f64
}

/// Maps `f` over the inputs on scoped worker threads, preserving order.
/// Keeps the repro binary's wall-clock reasonable when sweeping datasets.
pub fn parallel_map<T: Send, R: Send>(inputs: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let mut slots: Vec<Option<R>> = inputs.iter().map(|_| None).collect();
    std::thread::scope(|scope| {
        for (slot, input) in slots.iter_mut().zip(inputs) {
            let f = &f;
            scope.spawn(move || {
                *slot = Some(f(input));
            });
        }
    });
    slots.into_iter().map(|s| s.expect("filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fia_data::PaperDataset;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(vec![3u64, 1, 2], |x| x * 10);
        assert_eq!(out, vec![30, 10, 20]);
    }

    #[test]
    fn average_over_trials_uses_distinct_seeds() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.trials = 3;
        let mut seen = Vec::new();
        let _ = average_over_trials(&cfg, "t", |s| {
            seen.push(s);
            1.0
        });
        seen.dedup();
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn lr_training_pipeline_runs() {
        let cfg = ExperimentConfig::smoke();
        let s = Scenario::build(PaperDataset::CreditCard, cfg.scale, 0.3, None, 1);
        let model = train_lr(&s, &cfg, 2);
        let conf = s.confidences(&model);
        assert_eq!(conf.rows(), s.n_predictions());
        assert_eq!(conf.cols(), 2);
    }
}
