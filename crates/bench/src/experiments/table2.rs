//! Table II — "Statistics of Datasets".

use fia_data::{PaperDataset, TableTwoRow};

/// Returns the six Table II rows.
pub fn run() -> Vec<TableTwoRow> {
    PaperDataset::all()
        .iter()
        .map(|d| d.table_two_row())
        .collect()
}

/// Renders Table II in the paper's column order.
pub fn render() -> String {
    let rows: Vec<Vec<String>> = run()
        .into_iter()
        .map(|r| {
            vec![
                r.dataset.to_string(),
                r.samples.to_string(),
                r.classes.to_string(),
                r.features.to_string(),
            ]
        })
        .collect();
    crate::report::render_table(
        "Table II: Statistics of Datasets",
        &["Dataset", "Sample Num.", "Class Num.", "Feature Num."],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn six_rows_matching_paper() {
        let rows = super::run();
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[0].samples, 45_211);
        assert_eq!(rows[1].features, 23);
    }

    #[test]
    fn render_contains_all_names() {
        let s = super::render();
        for name in [
            "Bank marketing",
            "Credit card",
            "Drive diagnosis",
            "News popularity",
            "Synthetic dataset 1",
            "Synthetic dataset 2",
        ] {
            assert!(s.contains(name), "missing {name}");
        }
    }
}
