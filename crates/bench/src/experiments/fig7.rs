//! Fig. 7 — GRNA: MSE per feature vs `d_target` for LR, RF and NN
//! target models.

use crate::experiments::common;
use crate::profiles::ExperimentConfig;
use crate::scenario::Scenario;
use fia_core::metrics;
use fia_data::PaperDataset;

/// Which vertical FL model family GRNA attacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetModel {
    /// Logistic regression (directly differentiable).
    Lr,
    /// Random forest (through a distilled surrogate).
    Rf,
    /// Neural network (directly differentiable).
    Nn,
}

impl TargetModel {
    /// All three families of Fig. 7.
    pub fn all() -> [TargetModel; 3] {
        [TargetModel::Lr, TargetModel::Rf, TargetModel::Nn]
    }

    /// Legend label used in the figure.
    pub fn label(&self) -> &'static str {
        match self {
            TargetModel::Lr => "GRNA-LR",
            TargetModel::Rf => "GRNA-RF",
            TargetModel::Nn => "GRNA-NN",
        }
    }
}

/// One measured point of Fig. 7.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Dataset display name.
    pub dataset: &'static str,
    /// Target model family.
    pub model: TargetModel,
    /// Swept fraction `d_target / d`.
    pub dtarget_fraction: f64,
    /// GRNA MSE per feature.
    pub grna_mse: f64,
    /// Uniform random-guess baseline.
    pub rg_uniform: f64,
    /// Gaussian random-guess baseline.
    pub rg_gaussian: f64,
}

/// Runs the full Fig. 7 sweep (datasets × fractions × model families).
pub fn run(cfg: &ExperimentConfig) -> Vec<Fig7Row> {
    run_on(cfg, &PaperDataset::real_world(), &TargetModel::all())
}

/// Runs a restricted sweep (used by benches and Fig. 11).
pub fn run_on(
    cfg: &ExperimentConfig,
    datasets: &[PaperDataset],
    models: &[TargetModel],
) -> Vec<Fig7Row> {
    let jobs: Vec<(PaperDataset, TargetModel, f64)> = datasets
        .iter()
        .flat_map(|&d| {
            models
                .iter()
                .flat_map(move |&m| cfg.dtarget_grid.iter().map(move |&f| (d, m, f)))
        })
        .collect();
    common::parallel_map(jobs, |(dataset, model, fraction)| {
        measure_point(cfg, dataset, model, fraction)
    })
}

/// Measures one (dataset, model, fraction) point, averaged over trials.
pub fn measure_point(
    cfg: &ExperimentConfig,
    dataset: PaperDataset,
    model: TargetModel,
    fraction: f64,
) -> Fig7Row {
    let trials = cfg.trials.max(1);
    let mut grna_sum = 0.0;
    let mut rgu_sum = 0.0;
    let mut rgg_sum = 0.0;
    for t in 0..trials {
        let seed = cfg.seed_for(
            &format!("fig7/{}/{}/{fraction}", dataset.name(), model.label()),
            t,
        );
        let scenario = Scenario::build(dataset, cfg.scale, fraction, None, seed);
        let inferred = infer_with(&scenario, cfg, model, seed);
        grna_sum += metrics::mse_per_feature(&inferred, &scenario.truth);
        let (u, g) = common::random_guess_mse(&scenario, seed ^ 0x33);
        rgu_sum += u;
        rgg_sum += g;
    }
    let n = trials as f64;
    Fig7Row {
        dataset: dataset.name(),
        model,
        dtarget_fraction: fraction,
        grna_mse: grna_sum / n,
        rg_uniform: rgu_sum / n,
        rg_gaussian: rgg_sum / n,
    }
}

/// Trains the requested target model and runs GRNA, returning inferred
/// target features for the scenario's prediction set.
pub fn infer_with(
    scenario: &Scenario,
    cfg: &ExperimentConfig,
    model: TargetModel,
    seed: u64,
) -> fia_linalg::Matrix {
    match model {
        TargetModel::Lr => {
            let lr = common::train_lr(scenario, cfg, seed ^ 0x41);
            let conf = scenario.confidences(&lr);
            common::run_grna(scenario, &lr, cfg.grna.clone().with_seed(seed), &conf).1
        }
        TargetModel::Nn => {
            let nn = common::train_mlp(scenario, cfg, seed ^ 0x42);
            let conf = scenario.confidences(&nn);
            common::run_grna(scenario, &nn, cfg.grna.clone().with_seed(seed), &conf).1
        }
        TargetModel::Rf => {
            let forest = common::train_forest(scenario, cfg, seed ^ 0x43);
            common::run_grna_on_forest(scenario, &forest, cfg, seed)
        }
    }
}

/// Renders the sweep.
pub fn render(rows: &[Fig7Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.to_string(),
                r.model.label().to_string(),
                format!("{:.0}%", r.dtarget_fraction * 100.0),
                crate::report::fmt_metric(r.grna_mse),
                crate::report::fmt_metric(r.rg_uniform),
                crate::report::fmt_metric(r.rg_gaussian),
            ]
        })
        .collect();
    crate::report::render_table(
        "Fig. 7: GRNA — MSE per feature vs d_target (LR/RF/NN)",
        &[
            "Dataset",
            "Attack",
            "d_target%",
            "GRNA",
            "RG(Uniform)",
            "RG(Gaussian)",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grna_lr_beats_random_on_credit() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.dtarget_grid = vec![0.3];
        let row = measure_point(&cfg, PaperDataset::CreditCard, TargetModel::Lr, 0.3);
        assert!(row.grna_mse.is_finite());
        assert!(
            row.grna_mse < row.rg_uniform,
            "grna {} vs rg {}",
            row.grna_mse,
            row.rg_uniform
        );
    }

    #[test]
    fn rf_pathway_produces_estimates() {
        let cfg = ExperimentConfig::smoke();
        let seed = 3;
        let scenario = Scenario::build(PaperDataset::CreditCard, cfg.scale, 0.3, None, seed);
        let inferred = infer_with(&scenario, &cfg, TargetModel::Rf, seed);
        assert_eq!(inferred.rows(), scenario.n_predictions());
        assert_eq!(inferred.cols(), scenario.d_target());
        assert!(inferred.is_finite());
    }
}
