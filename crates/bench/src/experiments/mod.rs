//! One sub-module per table/figure of the paper's evaluation section.
//!
//! | Module | Reproduces |
//! |---|---|
//! | [`table2`] | Table II — dataset statistics |
//! | [`table3`] | Table III — GRN ablation study |
//! | [`fig5`] | Fig. 5 — ESA MSE vs `d_target` |
//! | [`fig6`] | Fig. 6 — PRA CBR vs `d_target` |
//! | [`fig7`] | Fig. 7 — GRNA MSE vs `d_target` (LR/RF/NN) |
//! | [`fig8`] | Fig. 8 — GRNA-on-RF CBR vs `d_target` |
//! | [`fig9`] | Fig. 9 — effect of the number of predictions |
//! | [`fig10`] | Fig. 10 — per-feature MSE vs correlations |
//! | [`fig11`] | Fig. 11 — rounding & dropout countermeasures |
//! | [`ablation`] | extra design-choice ablations (DESIGN.md §6) |

pub mod ablation;
pub mod common;
pub mod fig10;
pub mod fig11;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table2;
pub mod table3;
