//! Crash-safe session checkpoints.
//!
//! A [`CampaignCheckpoint`] is everything a killed process needs to
//! resume a [`Campaign`](crate::Campaign) bit-identically: the scenario
//! fingerprint + seed (to validate the resume target), the budget meter
//! ([`BudgetMeter`](crate::BudgetMeter)), the chunk cursor, and the
//! accumulated released-score corpus. It serializes to a self-checking
//! binary blob — magic, version byte, little-endian fields, raw
//! IEEE-754 matrix bits, trailing FNV-1a checksum — so a torn or stale
//! file surfaces as a typed [`CheckpointError`], never a corrupt
//! resume. The daemon (`fia-campaignd`) appends these blobs to its
//! write-ahead job log.

use crate::budget::{BudgetMeter, QueryBudget};
use fia_core::QueryCost;
use fia_linalg::Matrix;

/// Blob magic: `0xF1A_C4B01` truncated to 32 bits, little-endian on the
/// wire.
const MAGIC: u32 = 0xF1AC_4B01;
/// Current checkpoint format version.
const VERSION: u8 = 1;
/// Sanity cap on the fingerprint field (hex fingerprints are 16 bytes).
const MAX_FINGERPRINT_LEN: usize = 128;
/// Sanity cap on the embedded budget-meter blob.
const MAX_METER_LEN: usize = 1024;

/// A typed checkpoint decode/restore failure. Every way a blob can be
/// wrong — torn write, version skew, wrong scenario — maps to a
/// variant; restoring never panics on bad bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The blob ended before the encoded structure did.
    Truncated,
    /// The blob does not start with the checkpoint magic.
    BadMagic,
    /// The blob's format version is newer than this build understands.
    UnsupportedVersion(u8),
    /// The blob is structurally invalid (checksum mismatch, impossible
    /// field, trailing bytes).
    Corrupt(&'static str),
    /// The checkpoint belongs to a different scenario than the one it
    /// is being restored into.
    FingerprintMismatch {
        /// The scenario fingerprint the restore target has.
        expected: String,
        /// The fingerprint the checkpoint carries.
        found: String,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Truncated => write!(f, "checkpoint blob is truncated"),
            CheckpointError::BadMagic => write!(f, "not a checkpoint blob (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v}")
            }
            CheckpointError::Corrupt(why) => write!(f, "corrupt checkpoint: {why}"),
            CheckpointError::FingerprintMismatch { expected, found } => write!(
                f,
                "checkpoint fingerprint {found} does not match scenario {expected}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// FNV-1a over bytes (the blob's trailing integrity checksum).
fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// A little-endian byte cursor shared by the checkpoint and budget-meter
/// codecs.
pub(crate) struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.bytes.len() - self.pos < n {
            return Err(CheckpointError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, CheckpointError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

/// The complete resumable state of a [`Campaign`](crate::Campaign)
/// session, captured between chunks. See the module docs for the blob
/// format and [`Campaign::restore`](crate::Campaign::restore) for the
/// validated resume path.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignCheckpoint {
    /// Scenario fingerprint the session was attacking — restore
    /// validates it against the target scenario.
    pub fingerprint: String,
    /// Scenario seed (redundant with the fingerprint, kept for
    /// human-auditable job logs).
    pub seed: u64,
    /// The session's budget.
    pub budget: QueryBudget,
    /// What the session had spent when the checkpoint was taken.
    pub spent: QueryCost,
    /// Rows accumulated so far.
    pub rows_done: usize,
    /// Chunks issued so far.
    pub chunks_issued: usize,
    /// The configured accumulation chunk size.
    pub chunk: usize,
    /// The accumulated released-score corpus (`rows_done × c`), as the
    /// deployment released it — raw IEEE-754 bits in the blob, so a
    /// resume reproduces downstream attacks to the last ulp.
    pub confidences: Matrix,
}

impl CampaignCheckpoint {
    /// Serializes the checkpoint to its self-checking binary blob.
    pub fn to_blob(&self) -> Vec<u8> {
        let meter = BudgetMeter {
            budget: self.budget,
            spent: self.spent,
        }
        .to_blob();
        let fp = self.fingerprint.as_bytes();
        let (rows, cols) = self.confidences.shape();
        let mut out = Vec::with_capacity(64 + meter.len() + fp.len() + rows * cols * 8);
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.push(VERSION);
        out.extend_from_slice(&(fp.len() as u16).to_le_bytes());
        out.extend_from_slice(fp);
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&(meter.len() as u32).to_le_bytes());
        out.extend_from_slice(&meter);
        out.extend_from_slice(&(self.rows_done as u64).to_le_bytes());
        out.extend_from_slice(&(self.chunks_issued as u64).to_le_bytes());
        out.extend_from_slice(&(self.chunk as u64).to_le_bytes());
        out.extend_from_slice(&(rows as u64).to_le_bytes());
        out.extend_from_slice(&(cols as u64).to_le_bytes());
        for &v in self.confidences.as_slice() {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        let sum = fnv(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Decodes a blob produced by [`CampaignCheckpoint::to_blob`],
    /// rejecting torn, corrupted or version-skewed bytes with a typed
    /// [`CheckpointError`].
    pub fn from_blob(blob: &[u8]) -> Result<Self, CheckpointError> {
        if blob.len() < 8 {
            return Err(CheckpointError::Truncated);
        }
        let (body, tail) = blob.split_at(blob.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().unwrap());
        if fnv(body) != stored {
            return Err(CheckpointError::Corrupt("checksum mismatch"));
        }
        let mut c = Cursor::new(body);
        if c.u32()? != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = c.u8()?;
        if version != VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let fp_len = c.u16()? as usize;
        if fp_len > MAX_FINGERPRINT_LEN {
            return Err(CheckpointError::Corrupt("fingerprint over length cap"));
        }
        let fingerprint = std::str::from_utf8(c.take(fp_len)?)
            .map_err(|_| CheckpointError::Corrupt("fingerprint is not utf-8"))?
            .to_string();
        let seed = c.u64()?;
        let meter_len = c.u32()? as usize;
        if meter_len > MAX_METER_LEN {
            return Err(CheckpointError::Corrupt("budget meter over length cap"));
        }
        let meter = BudgetMeter::from_blob(c.take(meter_len)?)?;
        let rows_done = c.u64()? as usize;
        let chunks_issued = c.u64()? as usize;
        let chunk = c.u64()? as usize;
        let rows = c.u64()? as usize;
        let cols = c.u64()? as usize;
        let cells = rows
            .checked_mul(cols)
            .ok_or(CheckpointError::Corrupt("matrix shape overflows"))?;
        if c.remaining() != cells * 8 {
            return Err(CheckpointError::Corrupt("matrix payload length mismatch"));
        }
        if rows != rows_done {
            return Err(CheckpointError::Corrupt("corpus rows disagree with cursor"));
        }
        let bits = c.take(cells * 8)?;
        let confidences = if cells == 0 {
            Matrix::zeros(rows, cols)
        } else {
            let data: Vec<f64> = bits
                .chunks_exact(8)
                .map(|w| f64::from_bits(u64::from_le_bytes(w.try_into().unwrap())))
                .collect();
            Matrix::from_vec(rows, cols, data)
                .map_err(|_| CheckpointError::Corrupt("matrix shape rejected"))?
        };
        Ok(CampaignCheckpoint {
            fingerprint,
            seed,
            budget: meter.budget,
            spent: meter.spent,
            rows_done,
            chunks_issued,
            chunk,
            confidences,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CampaignCheckpoint {
        CampaignCheckpoint {
            fingerprint: "deadbeefcafef00d".to_string(),
            seed: 42,
            budget: QueryBudget::queries(7).with_rows(500),
            spent: QueryCost {
                queries: 3,
                rows: 96,
                cached_rows: 5,
            },
            rows_done: 3,
            chunks_issued: 3,
            chunk: 32,
            confidences: Matrix::from_fn(3, 4, |i, j| (i as f64 + 0.125) / (j as f64 + 1.0)),
        }
    }

    #[test]
    fn blob_round_trips_bit_exactly() {
        let cp = sample();
        let blob = cp.to_blob();
        let back = CampaignCheckpoint::from_blob(&blob).unwrap();
        assert_eq!(back, cp);
        // The matrix survives as raw bits, not formatted text.
        assert_eq!(
            back.confidences.as_slice()[5].to_bits(),
            cp.confidences.as_slice()[5].to_bits()
        );
        // Zero-row checkpoints (pre-first-chunk) round-trip too.
        let empty = CampaignCheckpoint {
            rows_done: 0,
            chunks_issued: 0,
            confidences: Matrix::zeros(0, 4),
            ..cp
        };
        assert_eq!(
            CampaignCheckpoint::from_blob(&empty.to_blob()).unwrap(),
            empty
        );
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let blob = sample().to_blob();
        for cut in 0..blob.len() {
            let err = CampaignCheckpoint::from_blob(&blob[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::Truncated | CheckpointError::Corrupt(_)
                ),
                "cut at {cut}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let blob = sample().to_blob();
        // Flipping any single bit anywhere (including inside the
        // checksum itself) must fail the integrity check.
        for byte in 0..blob.len() {
            let mut bad = blob.clone();
            bad[byte] ^= 0x10;
            assert!(
                CampaignCheckpoint::from_blob(&bad).is_err(),
                "flip at byte {byte} accepted"
            );
        }
    }

    #[test]
    fn version_skew_and_bad_magic_are_typed() {
        let cp = sample();
        let mut blob = cp.to_blob();
        // Bump the version byte and re-seal the checksum: decode must
        // report version skew, not a checksum error.
        blob[4] = 9;
        let body_len = blob.len() - 8;
        let sum = fnv(&blob[..body_len]);
        blob[body_len..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            CampaignCheckpoint::from_blob(&blob),
            Err(CheckpointError::UnsupportedVersion(9))
        );

        let mut blob = cp.to_blob();
        blob[0] ^= 0xFF;
        let body_len = blob.len() - 8;
        let sum = fnv(&blob[..body_len]);
        blob[body_len..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            CampaignCheckpoint::from_blob(&blob),
            Err(CheckpointError::BadMagic)
        );
    }

    #[test]
    fn errors_display_their_context() {
        let e = CheckpointError::FingerprintMismatch {
            expected: "aaaa".into(),
            found: "bbbb".into(),
        };
        assert!(e.to_string().contains("aaaa") && e.to_string().contains("bbbb"));
        assert!(CheckpointError::UnsupportedVersion(3)
            .to_string()
            .contains('3'));
    }
}
