//! The model families a scenario can deploy, behind one type.
//!
//! `VflSystem<M>` and `PredictionServer::spawn` are generic over the
//! model, but a *campaign* must hold "whatever model the scenario
//! trained" in one place and later hand the concrete type back to the
//! attack that needs it (ESA wants a [`LogisticRegression`], PRA a
//! [`DecisionTree`], GRNA any differentiable model). [`TrainedModel`] is
//! that seam: an enum over the four paper families implementing
//! [`PredictProba`] by delegation, so `VflSystem<TrainedModel>` serves
//! every family through the same deployment and serving stack.

use fia_data::Dataset;
use fia_linalg::Matrix;
use fia_models::{
    DecisionTree, ForestConfig, LogisticRegression, LrConfig, Mlp, MlpConfig, PredictProba,
    RandomForest, TreeConfig,
};
use rand::{rngs::StdRng, SeedableRng};

/// Which model family a scenario trains, with its training
/// configuration (Table I: the paper evaluates LR, NN, DT and RF).
#[derive(Debug, Clone)]
pub enum ModelSpec {
    /// Logistic regression (binary or multinomial) — the ESA target.
    Logistic(LrConfig),
    /// Feed-forward neural network — a GRNA target.
    Mlp(MlpConfig),
    /// CART decision tree — the PRA target.
    DecisionTree(TreeConfig),
    /// Bagged random forest — attacked by GRNA through a distilled
    /// surrogate (Section V-B).
    RandomForest(ForestConfig),
}

impl ModelSpec {
    /// Logistic regression with default training configuration.
    pub fn logistic() -> Self {
        ModelSpec::Logistic(LrConfig::default())
    }

    /// The paper's decision tree (depth 5).
    pub fn decision_tree() -> Self {
        ModelSpec::DecisionTree(TreeConfig::paper_dt())
    }

    /// Short stable family identifier (`"lr"`, `"nn"`, `"dt"`, `"rf"`).
    pub fn family(&self) -> &'static str {
        match self {
            ModelSpec::Logistic(_) => "lr",
            ModelSpec::Mlp(_) => "nn",
            ModelSpec::DecisionTree(_) => "dt",
            ModelSpec::RandomForest(_) => "rf",
        }
    }

    /// Trains the specified family on `train`. The scenario seed
    /// overrides the config's own seed so a scenario is reproducible
    /// from `(spec, seed)` alone.
    pub(crate) fn train(&self, train: &Dataset, seed: u64) -> TrainedModel {
        match self {
            ModelSpec::Logistic(cfg) => {
                let cfg = LrConfig {
                    seed,
                    ..cfg.clone()
                };
                TrainedModel::Logistic(LogisticRegression::fit(train, &cfg))
            }
            ModelSpec::Mlp(cfg) => {
                let cfg = cfg.clone().with_seed(seed);
                TrainedModel::Mlp(Mlp::fit(train, &cfg))
            }
            ModelSpec::DecisionTree(cfg) => {
                let mut rng = StdRng::seed_from_u64(seed);
                TrainedModel::DecisionTree(DecisionTree::fit(train, cfg, &mut rng))
            }
            ModelSpec::RandomForest(cfg) => {
                let cfg = ForestConfig {
                    seed,
                    ..cfg.clone()
                };
                TrainedModel::RandomForest(RandomForest::fit(train, &cfg))
            }
        }
    }
}

/// The trained model a resolved scenario deploys — one concrete type
/// over all four families, so a single `VflSystem<TrainedModel>` (and a
/// single `PredictionServer`) serves any of them.
pub enum TrainedModel {
    /// A trained logistic regression.
    Logistic(LogisticRegression),
    /// A trained feed-forward network.
    Mlp(Mlp),
    /// A trained decision tree.
    DecisionTree(DecisionTree),
    /// A trained random forest.
    RandomForest(RandomForest),
}

impl TrainedModel {
    /// Short stable family identifier (`"lr"`, `"nn"`, `"dt"`, `"rf"`).
    pub fn family(&self) -> &'static str {
        match self {
            TrainedModel::Logistic(_) => "lr",
            TrainedModel::Mlp(_) => "nn",
            TrainedModel::DecisionTree(_) => "dt",
            TrainedModel::RandomForest(_) => "rf",
        }
    }

    /// The concrete logistic regression, when this is one.
    pub fn as_logistic(&self) -> Option<&LogisticRegression> {
        match self {
            TrainedModel::Logistic(m) => Some(m),
            _ => None,
        }
    }

    /// The concrete decision tree, when this is one.
    pub fn as_decision_tree(&self) -> Option<&DecisionTree> {
        match self {
            TrainedModel::DecisionTree(m) => Some(m),
            _ => None,
        }
    }
}

impl PredictProba for TrainedModel {
    fn predict_proba(&self, x: &Matrix) -> Matrix {
        match self {
            TrainedModel::Logistic(m) => m.predict_proba(x),
            TrainedModel::Mlp(m) => m.predict_proba(x),
            TrainedModel::DecisionTree(m) => m.predict_proba(x),
            TrainedModel::RandomForest(m) => m.predict_proba(x),
        }
    }

    fn n_features(&self) -> usize {
        match self {
            TrainedModel::Logistic(m) => m.n_features(),
            TrainedModel::Mlp(m) => m.n_features(),
            TrainedModel::DecisionTree(m) => m.n_features(),
            TrainedModel::RandomForest(m) => m.n_features(),
        }
    }

    fn n_classes(&self) -> usize {
        match self {
            TrainedModel::Logistic(m) => m.n_classes(),
            TrainedModel::Mlp(m) => m.n_classes(),
            TrainedModel::DecisionTree(m) => m.n_classes(),
            TrainedModel::RandomForest(m) => m.n_classes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fia_data::{PaperDataset, SplitSpec};

    #[test]
    fn every_family_trains_and_predicts() {
        let ds = PaperDataset::CreditCard.generate(0.008, 3);
        let split = ds.split(&SplitSpec::paper_default(), 3);
        let specs = [
            ModelSpec::logistic(),
            ModelSpec::Mlp(MlpConfig {
                epochs: 2,
                ..MlpConfig::fast()
            }),
            ModelSpec::decision_tree(),
            ModelSpec::RandomForest(ForestConfig {
                n_trees: 4,
                ..ForestConfig::default()
            }),
        ];
        for spec in specs {
            let model = spec.train(&split.train, 7);
            assert_eq!(model.family(), spec.family());
            assert_eq!(model.n_features(), 23);
            assert_eq!(model.n_classes(), 2);
            let p = model.predict_proba(&split.test.features);
            assert_eq!(p.shape(), (split.test.n_samples(), 2));
            for i in 0..p.rows() {
                let s: f64 = p.row(i).iter().sum();
                assert!(
                    (s - 1.0).abs() < 1e-9,
                    "{} row {i} sums to {s}",
                    spec.family()
                );
            }
        }
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let ds = PaperDataset::CreditCard.generate(0.008, 5);
        let split = ds.split(&SplitSpec::paper_default(), 5);
        let a = ModelSpec::logistic().train(&split.train, 11);
        let b = ModelSpec::logistic().train(&split.train, 11);
        assert_eq!(
            a.predict_proba(&split.test.features),
            b.predict_proba(&split.test.features)
        );
    }

    #[test]
    fn concrete_accessors_match_family() {
        let ds = PaperDataset::CreditCard.generate(0.008, 9);
        let split = ds.split(&SplitSpec::paper_default(), 9);
        let lr = ModelSpec::logistic().train(&split.train, 1);
        assert!(lr.as_logistic().is_some());
        assert!(lr.as_decision_tree().is_none());
        let dt = ModelSpec::decision_tree().train(&split.train, 1);
        assert!(dt.as_decision_tree().is_some());
        assert!(dt.as_logistic().is_none());
    }
}
