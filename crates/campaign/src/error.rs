//! Typed campaign failures.

use crate::checkpoint::CheckpointError;
use fia_core::OracleError;

/// A campaign session failure.
#[derive(Debug)]
pub enum CampaignError {
    /// The configured attack cannot run against the scenario's model
    /// family (e.g. ESA against a decision tree).
    Incompatible {
        /// Attack identifier.
        attack: &'static str,
        /// Model family identifier.
        model: &'static str,
    },
    /// A prediction-oracle round failed (transport, rejection,
    /// malformed response, or the budget adapter's hard stop).
    Oracle(OracleError),
    /// The served oracle's prediction server could not be spawned.
    Spawn(std::io::Error),
    /// The served oracle's client could not connect or handshake.
    Connect(String),
    /// A session checkpoint could not be decoded or restored.
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Incompatible { attack, model } => {
                write!(
                    f,
                    "attack {attack:?} cannot run against model family {model:?}"
                )
            }
            CampaignError::Oracle(e) => write!(f, "campaign oracle failure: {e}"),
            CampaignError::Spawn(e) => write!(f, "could not spawn prediction server: {e}"),
            CampaignError::Connect(why) => {
                write!(f, "could not connect to prediction server: {why}")
            }
            CampaignError::Checkpoint(e) => write!(f, "campaign checkpoint failure: {e}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<OracleError> for CampaignError {
    fn from(e: OracleError) -> Self {
        CampaignError::Oracle(e)
    }
}

impl From<CheckpointError> for CampaignError {
    fn from(e: CheckpointError) -> Self {
        CampaignError::Checkpoint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_carry_context() {
        let e = CampaignError::Incompatible {
            attack: "esa",
            model: "dt",
        };
        assert!(e.to_string().contains("esa"));
        assert!(e.to_string().contains("dt"));
        let e: CampaignError = OracleError("boom".into()).into();
        assert!(e.to_string().contains("boom"));
        let e: CampaignError = CheckpointError::Truncated.into();
        assert!(e.to_string().contains("truncated"));
    }
}
