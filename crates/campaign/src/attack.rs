//! Attack selection and dispatch over the scenario's model family.
//!
//! The three paper attacks bind to *concrete* model types (ESA to a
//! logistic regression, PRA to a decision tree, GRNA to anything
//! differentiable — with random forests entering through a distilled
//! surrogate, Section V-B). [`AttackSpec`] names an attack plus its
//! configuration as plain data; at run time the campaign matches it
//! against the scenario's [`TrainedModel`] and either constructs and
//! runs the attack or fails with a typed
//! [`CampaignError::Incompatible`].

use crate::error::CampaignError;
use crate::model::TrainedModel;
use fia_core::{
    AttackEngine, AttackResult, EqualitySolvingAttack, Grna, GrnaConfig, PathRestrictionAttack,
    QueryBatch,
};
use fia_models::{distill_forest_with_pool, DifferentiableModel, DistillConfig};

/// Which attack a campaign mounts, with its configuration.
#[derive(Debug, Clone)]
pub enum AttackSpec {
    /// Equality solving attack (Section IV-A) — logistic regression
    /// scenarios only.
    Esa,
    /// Path restriction attack (Section IV-B) — decision-tree scenarios
    /// only.
    Pra {
        /// Base seed of the surviving-path tie-break sampling.
        seed: u64,
        /// Known feature value range `(lo, hi)` for point estimates.
        value_range: (f64, f64),
    },
    /// Generative regression network attack (Section V) — any
    /// differentiable model; random forests are attacked through a
    /// distilled surrogate trained with `distill`.
    Grna {
        /// Generator training configuration. This carries the
        /// [`GrnaConfig::precision`] knob verbatim: campaigns train the
        /// generator under the mixed-f32 tape when it is set to
        /// `Precision::F32` (inference and every other campaign stage
        /// stay f64, so default-precision reports remain bit-identical
        /// across kernel backends).
        config: GrnaConfig,
        /// Base seed of the inference-time noise draws.
        infer_seed: u64,
        /// Surrogate distillation configuration (random forests only).
        distill: DistillConfig,
    },
}

impl AttackSpec {
    /// The equality solving attack.
    pub fn esa() -> Self {
        AttackSpec::Esa
    }

    /// The path restriction attack with the paper's normalized `(0, 1)`
    /// value range and seed 0.
    pub fn pra() -> Self {
        AttackSpec::Pra {
            seed: 0,
            value_range: (0.0, 1.0),
        }
    }

    /// The GRN attack; inference noise is seeded from the config seed,
    /// and forest distillation uses [`DistillConfig::fast`].
    pub fn grna(config: GrnaConfig) -> Self {
        let infer_seed = config.seed ^ 0x1AFE;
        let distill = DistillConfig {
            seed: config.seed ^ 0xD157,
            ..DistillConfig::fast()
        };
        AttackSpec::Grna {
            config,
            infer_seed,
            distill,
        }
    }

    /// Short stable identifier (`"esa"`, `"pra"`, `"grna"`).
    pub fn name(&self) -> &'static str {
        match self {
            AttackSpec::Esa => "esa",
            AttackSpec::Pra { .. } => "pra",
            AttackSpec::Grna { .. } => "grna",
        }
    }

    /// Whether this attack can mount against the given model family —
    /// the check the campaign session runs *before* spending a single
    /// query, so a misconfigured session fails fast instead of after
    /// the corpus (and the budget) is gone.
    pub fn compatible_with(&self, model: &TrainedModel) -> bool {
        match self {
            AttackSpec::Esa => matches!(model, TrainedModel::Logistic(_)),
            AttackSpec::Pra { .. } => matches!(model, TrainedModel::DecisionTree(_)),
            // GRNA needs a differentiable path: direct for LR/NN, via
            // the distilled surrogate for forests; a lone tree has
            // neither.
            AttackSpec::Grna { .. } => !matches!(model, TrainedModel::DecisionTree(_)),
        }
    }

    /// [`AttackSpec::compatible_with`] as a typed error.
    pub(crate) fn check_model(&self, model: &TrainedModel) -> Result<(), CampaignError> {
        if self.compatible_with(model) {
            Ok(())
        } else {
            Err(CampaignError::Incompatible {
                attack: self.name(),
                model: model.family(),
            })
        }
    }

    /// Resolves this spec against the scenario's model and runs it over
    /// the accumulated corpus.
    pub(crate) fn run(
        &self,
        model: &TrainedModel,
        adv_indices: &[usize],
        target_indices: &[usize],
        engine: &AttackEngine,
        batch: &QueryBatch,
    ) -> Result<AttackResult, CampaignError> {
        match self {
            AttackSpec::Esa => match model {
                TrainedModel::Logistic(lr) => {
                    let attack = EqualitySolvingAttack::new(lr, adv_indices, target_indices);
                    Ok(engine.run(&attack, batch))
                }
                other => Err(CampaignError::Incompatible {
                    attack: "esa",
                    model: other.family(),
                }),
            },
            AttackSpec::Pra { seed, value_range } => match model {
                TrainedModel::DecisionTree(tree) => {
                    let attack = PathRestrictionAttack::new(tree, adv_indices, target_indices)
                        .with_seed(*seed)
                        .with_value_range(value_range.0, value_range.1);
                    Ok(engine.run(&attack, batch))
                }
                other => Err(CampaignError::Incompatible {
                    attack: "pra",
                    model: other.family(),
                }),
            },
            AttackSpec::Grna {
                config,
                infer_seed,
                distill,
            } => match model {
                TrainedModel::Logistic(lr) => Ok(run_grna(
                    lr,
                    adv_indices,
                    target_indices,
                    config,
                    *infer_seed,
                    engine,
                    batch,
                )),
                TrainedModel::Mlp(mlp) => Ok(run_grna(
                    mlp,
                    adv_indices,
                    target_indices,
                    config,
                    *infer_seed,
                    engine,
                    batch,
                )),
                TrainedModel::RandomForest(forest) => {
                    // The surrogate's dummy pool bootstraps from the
                    // adversary's own observed values — data the threat
                    // model already grants it.
                    let surrogate =
                        distill_forest_with_pool(forest, distill, batch.x_adv.as_slice());
                    Ok(run_grna(
                        &surrogate,
                        adv_indices,
                        target_indices,
                        config,
                        *infer_seed,
                        engine,
                        batch,
                    ))
                }
                other => Err(CampaignError::Incompatible {
                    attack: "grna",
                    model: other.family(),
                }),
            },
        }
    }
}

/// Trains the generator on the corpus and infers it back — the paper's
/// "the samples to be attacked are exactly the samples for training the
/// generator" shape, here over whatever (possibly partial) corpus the
/// budget allowed.
fn run_grna<M: DifferentiableModel>(
    model: &M,
    adv_indices: &[usize],
    target_indices: &[usize],
    config: &GrnaConfig,
    infer_seed: u64,
    engine: &AttackEngine,
    batch: &QueryBatch,
) -> AttackResult {
    let grna = Grna::new(model, adv_indices, target_indices, config.clone());
    let generator = grna
        .train(&batch.x_adv, &batch.confidences)
        .with_infer_seed(infer_seed);
    engine.run(&generator, batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{PartitionSpec, ScenarioSpec};
    use crate::ModelSpec;
    use fia_data::PaperDataset;
    use fia_models::PredictProba;

    #[test]
    fn esa_requires_logistic() {
        let scenario = ScenarioSpec::paper(PaperDataset::CreditCard)
            .with_model(ModelSpec::decision_tree())
            .with_seed(3)
            .build();
        let data = scenario.data();
        let batch = QueryBatch::new(
            data.x_adv.clone(),
            scenario.model().predict_proba(&data.prediction.features),
        );
        let err = AttackSpec::esa()
            .run(
                scenario.model(),
                &data.adv_indices,
                &data.target_indices,
                &AttackEngine::new(),
                &batch,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            CampaignError::Incompatible {
                attack: "esa",
                model: "dt"
            }
        ));
    }

    #[test]
    fn pra_runs_on_tree_scenarios() {
        let scenario = ScenarioSpec::paper(PaperDataset::CreditCard)
            .with_model(ModelSpec::decision_tree())
            .with_partition(PartitionSpec::two_block_random(0.3))
            .with_seed(5)
            .build();
        let data = scenario.data();
        let batch = QueryBatch::new(
            data.x_adv.clone(),
            scenario.model().predict_proba(&data.prediction.features),
        );
        let result = AttackSpec::pra()
            .run(
                scenario.model(),
                &data.adv_indices,
                &data.target_indices,
                &AttackEngine::new(),
                &batch,
            )
            .unwrap();
        assert_eq!(result.attack, "pra");
        assert_eq!(result.estimates.shape(), (batch.len(), data.d_target()));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(AttackSpec::esa().name(), "esa");
        assert_eq!(AttackSpec::pra().name(), "pra");
        assert_eq!(AttackSpec::grna(GrnaConfig::fast()).name(), "grna");
    }
}
