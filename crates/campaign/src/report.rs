//! The campaign's terminal artifact.
//!
//! Every run ends in one [`CampaignReport`]: attack metrics, the
//! session's [`QueryCost`], the scenario fingerprint and seed — enough
//! to reproduce the run and to compare runs across scenarios. The
//! report serializes to JSON ([`CampaignReport::to_json`]) with the
//! same hand-rolled writer style as the bench harness (the offline
//! build has no serde); the raw estimate matrices stay in memory only.

use fia_core::QueryCost;
use fia_linalg::Matrix;
use fia_serve::AuditSummary;
use fia_telemetry::TelemetrySnapshot;
use std::fmt::Write as _;

/// How a campaign session ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignOutcome {
    /// The full planned corpus was accumulated and attacked.
    Completed,
    /// The [`QueryBudget`](crate::QueryBudget) ran out first; the
    /// attacks ran over the partial corpus accumulated so far.
    BudgetExhausted {
        /// Rows accumulated when the budget ran out.
        rows_done: usize,
        /// Rows the full campaign would have accumulated.
        rows_planned: usize,
    },
}

impl CampaignOutcome {
    /// Short stable identifier (`"completed"` / `"budget-exhausted"`).
    pub fn name(&self) -> &'static str {
        match self {
            CampaignOutcome::Completed => "completed",
            CampaignOutcome::BudgetExhausted { .. } => "budget-exhausted",
        }
    }

    /// `true` for [`CampaignOutcome::Completed`].
    pub fn is_complete(&self) -> bool {
        matches!(self, CampaignOutcome::Completed)
    }
}

/// One attack's results over the accumulated corpus.
#[derive(Debug, Clone)]
pub struct AttackReport {
    /// Attack identifier (`"esa"`, `"pra"`, `"grna"`).
    pub attack: &'static str,
    /// Rows inferred (the corpus size — partial under an exhausted
    /// budget).
    pub rows: usize,
    /// Rows where inference degraded to a fallback.
    pub degraded_rows: usize,
    /// MSE-per-feature (Eqn 10) against the ground truth.
    pub mse: f64,
    /// Per-target-feature MSE columns, ordered per `target_indices`.
    pub per_feature_mse: Vec<f64>,
    /// Global feature indices the estimate columns reconstruct.
    pub target_indices: Vec<usize>,
    /// The inferred target features (`rows × d_target`). Not serialized
    /// by [`CampaignReport::to_json`].
    pub estimates: Matrix,
}

/// The single serializable artifact a campaign run ends in.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Scenario fingerprint (`ScenarioSpec::fingerprint`).
    pub fingerprint: String,
    /// Canonical scenario description (`ScenarioSpec::describe`).
    pub scenario: String,
    /// Scenario seed.
    pub seed: u64,
    /// Oracle kind the session queried (`"in-process"` / `"served(…)"`).
    pub oracle: String,
    /// How the session ended.
    pub outcome: CampaignOutcome,
    /// Rows accumulated (equals `rows_planned` when completed).
    pub rows_done: usize,
    /// Rows a full campaign would accumulate.
    pub rows_planned: usize,
    /// What the session cost the deployment, metered at the oracle
    /// boundary (including rows the deployment served from cache).
    pub cost: QueryCost,
    /// One entry per configured attack, in configuration order.
    pub attacks: Vec<AttackReport>,
    /// What this run added to the process-global telemetry registry
    /// (kernel calls, attack phases, campaign chunk counters), as a
    /// snapshot delta over the run.
    pub telemetry: TelemetrySnapshot,
    /// The session's distributed-trace id, stamped on every traced
    /// prediction query (deterministic: derived from fingerprint and
    /// seed, so reruns of one scenario share it).
    pub trace_id: u64,
    /// Client-side spans (`campaign.run` / `campaign.chunk` /
    /// `campaign.attack`) as JSONL.
    pub client_trace_jsonl: String,
    /// Server-side spans (`serve.request` → `serve.round` trees) as
    /// JSONL; `None` for in-process sessions.
    pub server_trace_jsonl: Option<String>,
    /// The audit-ledger session tag this campaign declared to the
    /// server; `None` for in-process sessions.
    pub session_tag: Option<String>,
    /// The server's per-client audit ledger at run end; `None` for
    /// in-process sessions.
    pub server_audit: Option<AuditSummary>,
}

impl CampaignReport {
    /// The report for one attack by name, if present.
    pub fn attack(&self, name: &str) -> Option<&AttackReport> {
        self.attacks.iter().find(|a| a.attack == name)
    }

    /// One merged distributed trace: the client-side spans followed by
    /// the server-side spans. The two id spaces are disjoint (server
    /// span ids start at `1 << 32`), and every server `serve.request`
    /// span's parent is the client-side `campaign.chunk` span that
    /// caused it — so the concatenated JSONL resolves into a single
    /// cross-process tree per `campaign.run`. For in-process sessions
    /// this is just the client trace.
    pub fn merged_trace_jsonl(&self) -> String {
        match &self.server_trace_jsonl {
            Some(server) => format!("{}{}", self.client_trace_jsonl, server),
            None => self.client_trace_jsonl.clone(),
        }
    }

    /// Serializes the report (metrics only — estimates stay in memory)
    /// as a JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"fingerprint\": \"{}\",", self.fingerprint);
        let _ = writeln!(out, "  \"scenario\": \"{}\",", escape(&self.scenario));
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"oracle\": \"{}\",", escape(&self.oracle));
        let _ = writeln!(out, "  \"trace_id\": {},", self.trace_id);
        if let Some(tag) = &self.session_tag {
            let _ = writeln!(out, "  \"session_tag\": \"{}\",", escape(tag));
        }
        let _ = writeln!(out, "  \"outcome\": \"{}\",", self.outcome.name());
        let _ = writeln!(out, "  \"rows_done\": {},", self.rows_done);
        let _ = writeln!(out, "  \"rows_planned\": {},", self.rows_planned);
        let _ = writeln!(
            out,
            "  \"cost\": {{\"queries\": {}, \"rows\": {}, \"cached_rows\": {}}},",
            self.cost.queries, self.cost.rows, self.cost.cached_rows
        );
        out.push_str("  \"attacks\": [\n");
        for (i, a) in self.attacks.iter().enumerate() {
            let per_feature: Vec<String> = a
                .per_feature_mse
                .iter()
                .map(|v| format!("{v:.9e}"))
                .collect();
            let _ = write!(
                out,
                "    {{\"attack\": \"{}\", \"rows\": {}, \"degraded_rows\": {}, \"mse\": {:.9e}, \"per_feature_mse\": [{}]}}",
                a.attack,
                a.rows,
                a.degraded_rows,
                a.mse,
                per_feature.join(", ")
            );
            out.push_str(if i + 1 < self.attacks.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        let _ = writeln!(out, "  \"telemetry\": {}", self.telemetry.to_json());
        out.push_str("}\n");
        out
    }
}

/// JSON string escaping: backslash, quote, and control characters
/// (caller-supplied dataset names can carry anything).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_report() -> CampaignReport {
        CampaignReport {
            fingerprint: "deadbeefdeadbeef".to_string(),
            scenario: "data=paper;model=\"lr\"".to_string(),
            seed: 7,
            oracle: "in-process".to_string(),
            outcome: CampaignOutcome::BudgetExhausted {
                rows_done: 5,
                rows_planned: 10,
            },
            rows_done: 5,
            rows_planned: 10,
            cost: QueryCost {
                queries: 2,
                rows: 5,
                cached_rows: 1,
            },
            attacks: vec![AttackReport {
                attack: "esa",
                rows: 5,
                degraded_rows: 0,
                mse: 1.5e-17,
                per_feature_mse: vec![1e-17, 2e-17],
                target_indices: vec![3, 4],
                estimates: Matrix::zeros(5, 2),
            }],
            telemetry: TelemetrySnapshot::default(),
            trace_id: 0xFEED,
            client_trace_jsonl: "{\"id\":1,\"name\":\"campaign.run\"}\n".to_string(),
            server_trace_jsonl: None,
            session_tag: None,
            server_audit: None,
        }
    }

    #[test]
    fn json_is_balanced_and_carries_cost() {
        let json = toy_report().to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"cached_rows\": 1"));
        assert!(json.contains("\"outcome\": \"budget-exhausted\""));
        assert!(json.contains("\\\"lr\\\""), "quotes escaped: {json}");
        assert!(json.contains("\"attack\": \"esa\""));
        assert!(json.contains("\"telemetry\": {\"instruments\":[]}"));
        assert!(json.contains("\"trace_id\": 65261"));
        // Estimates and traces are not serialized into the report JSON.
        assert!(!json.contains("estimates"));
        assert!(!json.contains("campaign.run"));
    }

    #[test]
    fn merged_trace_concatenates_client_then_server() {
        let mut r = toy_report();
        assert_eq!(r.merged_trace_jsonl(), r.client_trace_jsonl);
        r.server_trace_jsonl = Some("{\"id\":4294967296,\"parent\":1}\n".to_string());
        let merged = r.merged_trace_jsonl();
        assert!(merged.starts_with(&r.client_trace_jsonl));
        assert!(merged.ends_with("\"parent\":1}\n"));
        assert_eq!(merged.lines().count(), 2);
    }

    #[test]
    fn control_characters_are_escaped() {
        let mut r = toy_report();
        r.scenario = "custom:line1\nline2\t\u{1}".to_string();
        let json = r.to_json();
        assert!(json.contains("line1\\nline2\\t\\u0001"));
        assert!(!json.contains('\u{1}'));
    }

    #[test]
    fn outcome_names_and_lookup() {
        let r = toy_report();
        assert!(!r.outcome.is_complete());
        assert_eq!(CampaignOutcome::Completed.name(), "completed");
        assert_eq!(r.attack("esa").unwrap().rows, 5);
        assert!(r.attack("pra").is_none());
    }
}
