//! The typed scenario builder.
//!
//! A scenario is everything the paper fixes before the adversary spends
//! a single query (Section VI-A): the dataset and its split, the
//! vertical feature partition, the collusion structure, the model
//! family, the deployed defenses and the shape of the prediction
//! interface. [`ScenarioSpec`] captures all of it as data, so a run is
//! reproducible from `(spec, seed)` and two runs are comparable by
//! [`ScenarioSpec::fingerprint`].
//!
//! Building happens in two stages:
//!
//! * [`ScenarioSpec::materialize`] resolves the *data* side — generate,
//!   split, partition, apply the threat model — into a [`ScenarioData`]
//!   (this is the stage experiment harnesses reuse when they train their
//!   own per-trial models);
//! * [`ScenarioSpec::build`] additionally trains the model and deploys
//!   it as a `VflSystem`, yielding a [`ResolvedScenario`] ready to drive
//!   a [`Campaign`](crate::Campaign).

use crate::model::{ModelSpec, TrainedModel};
use fia_data::{Dataset, PaperDataset, SplitSpec};
use fia_defense::DefensePipeline;
use fia_linalg::Matrix;
use fia_vfl::{ThreatModel, VerticalPartition, VflSystem};
use std::sync::Arc;
use std::time::Duration;

/// Where the scenario's samples come from.
#[derive(Debug, Clone)]
pub enum DataSpec {
    /// One of the paper's six Table II datasets at a sample-count scale.
    Paper {
        /// The Table II dataset.
        dataset: PaperDataset,
        /// Sample-count scale vs. Table II (`1.0` = full size).
        scale: f64,
    },
    /// A caller-supplied dataset (e.g. loaded from CSV).
    Custom(Dataset),
}

/// How the global feature space is split across parties.
#[derive(Debug, Clone)]
pub enum PartitionSpec {
    /// A random `target_fraction` of features forms the passive target
    /// party's block; the active party holds the rest (the paper's
    /// swept `d_target / d` knob).
    TwoBlockRandom {
        /// Fraction of features owned by the target party.
        target_fraction: f64,
    },
    /// Explicit contiguous blocks, one width per party in id order
    /// (party 0 is active).
    Contiguous(Vec<usize>),
}

impl PartitionSpec {
    /// A random two-party split with the given target share.
    pub fn two_block_random(target_fraction: f64) -> Self {
        PartitionSpec::TwoBlockRandom { target_fraction }
    }

    /// Contiguous blocks with the given widths.
    pub fn contiguous(widths: &[usize]) -> Self {
        PartitionSpec::Contiguous(widths.to_vec())
    }
}

/// Tuning knobs for a [`OracleSpec::Served`] deployment — the subset of
/// `fia_serve::ServeConfig` a campaign exposes (the bind address is
/// always an ephemeral port, and coalescing stays on).
#[derive(Debug, Clone)]
pub struct ServedConfig {
    /// Backend replicas behind the prediction service.
    pub replicas: usize,
    /// Released-score cache capacity in rows; `0` disables caching.
    pub cache_capacity: usize,
    /// Row budget per coalesced prediction round.
    pub batch_cap: usize,
    /// Coalescer deadline past a round's first request.
    pub batch_deadline: Duration,
    /// Simulated fixed cost of one secure joint-prediction round.
    pub round_cost: Duration,
}

impl Default for ServedConfig {
    fn default() -> Self {
        ServedConfig {
            replicas: 1,
            cache_capacity: 0,
            batch_cap: 64,
            batch_deadline: Duration::from_micros(500),
            round_cost: Duration::ZERO,
        }
    }
}

/// The prediction interface the adversary queries.
#[derive(Debug, Clone)]
pub enum OracleSpec {
    /// Query the deployment in-process (no network): a protocol round
    /// per oracle call, with the scenario's defense pipeline applied at
    /// the score-release boundary.
    InProcess,
    /// Spawn a real `fia_serve::PredictionServer` on an ephemeral port
    /// and query it over TCP; the campaign tears the server down when it
    /// is shut down or dropped.
    Served(ServedConfig),
}

impl OracleSpec {
    /// A served oracle with default tuning.
    pub fn served() -> Self {
        OracleSpec::Served(ServedConfig::default())
    }

    /// Compact human-readable form for reports.
    pub fn describe(&self) -> String {
        match self {
            OracleSpec::InProcess => "in-process".to_string(),
            OracleSpec::Served(cfg) => format!(
                "served(replicas={},cache={},batch_cap={})",
                cfg.replicas, cfg.cache_capacity, cfg.batch_cap
            ),
        }
    }
}

/// The complete, typed description of an attack scenario: data source,
/// split, partition, threat model, model family, defenses and the
/// oracle the adversary will query. See the module docs for the
/// two-stage build.
#[derive(Clone)]
pub struct ScenarioSpec {
    data: DataSpec,
    split: SplitSpec,
    partition: PartitionSpec,
    threat: ThreatModel,
    model: ModelSpec,
    defense: Arc<DefensePipeline>,
    oracle: OracleSpec,
    seed: u64,
}

impl ScenarioSpec {
    /// A scenario over one of the paper's Table II datasets. Defaults:
    /// 1% scale, the paper's split, a random 30% target block, the
    /// active party attacking alone, logistic regression, no defenses,
    /// an in-process oracle, seed 0.
    pub fn paper(dataset: PaperDataset) -> Self {
        Self::with_data(DataSpec::Paper {
            dataset,
            scale: 0.01,
        })
    }

    /// A scenario over a caller-supplied dataset (same defaults).
    pub fn custom(dataset: Dataset) -> Self {
        Self::with_data(DataSpec::Custom(dataset))
    }

    fn with_data(data: DataSpec) -> Self {
        ScenarioSpec {
            data,
            split: SplitSpec::paper_default(),
            partition: PartitionSpec::two_block_random(0.3),
            threat: ThreatModel::active_only(),
            model: ModelSpec::logistic(),
            defense: Arc::new(DefensePipeline::new()),
            oracle: OracleSpec::InProcess,
            seed: 0,
        }
    }

    /// Overrides the sample-count scale (paper datasets only).
    ///
    /// # Panics
    /// Panics when the data source is [`DataSpec::Custom`].
    pub fn with_scale(mut self, scale: f64) -> Self {
        match &mut self.data {
            DataSpec::Paper { scale: s, .. } => *s = scale,
            DataSpec::Custom(_) => panic!("scale applies to paper datasets only"),
        }
        self
    }

    /// Overrides the three-way split.
    pub fn with_split(mut self, split: SplitSpec) -> Self {
        self.split = split;
        self
    }

    /// Overrides the prediction-set fraction (Fig. 9's `n / |D|` knob).
    pub fn with_prediction_fraction(mut self, f: f64) -> Self {
        self.split = self.split.with_prediction_fraction(f);
        self
    }

    /// Overrides the vertical feature partition.
    pub fn with_partition(mut self, partition: PartitionSpec) -> Self {
        self.partition = partition;
        self
    }

    /// Overrides the collusion structure.
    pub fn with_threat(mut self, threat: ThreatModel) -> Self {
        self.threat = threat;
        self
    }

    /// Overrides the model family / training configuration.
    pub fn with_model(mut self, model: ModelSpec) -> Self {
        self.model = model;
        self
    }

    /// Installs a defense pipeline at the score-release boundary (both
    /// oracle kinds apply it; the served oracle applies it inside the
    /// prediction server, once per coalesced round).
    ///
    /// Release-composition caveat: element-wise defenses (rounding)
    /// release identical bytes whatever the round composition, so
    /// served and in-process campaigns — and resumed vs fresh runs —
    /// stay bit-identical. Defenses that seed from the *released
    /// batch's* content (`NoiseDefense`) deliberately draw different
    /// noise per round composition; the served oracle's coalescing and
    /// shard-splitting compose rounds differently than in-process
    /// chunks, so such scenarios are statistically equivalent across
    /// oracle kinds but not bit-comparable (nor is a resumed run whose
    /// remainder chunk differs). That mirrors the modelled deployment:
    /// the adversary cannot re-derive the server's noise stream.
    pub fn with_defense(mut self, defense: DefensePipeline) -> Self {
        self.defense = Arc::new(defense);
        self
    }

    /// Overrides the oracle kind the adversary queries.
    pub fn with_oracle(mut self, oracle: OracleSpec) -> Self {
        self.oracle = oracle;
        self
    }

    /// Overrides the scenario seed (drives generation, splitting, the
    /// feature split and model training).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Canonical human-readable description of the scenario — the
    /// material the [`ScenarioSpec::fingerprint`] hashes. Defense
    /// stages enter through their parameterized descriptors
    /// (`"rounding(b=3)"`), so configurations differing only in a
    /// stage parameter do not collide.
    pub fn describe(&self) -> String {
        let data = match &self.data {
            DataSpec::Paper { dataset, scale } => {
                format!("paper:{}@{scale}", dataset.name())
            }
            DataSpec::Custom(ds) => {
                // Hash the whole dataset — features, labels and class
                // count — so two custom datasets share a fingerprint
                // only when every training-relevant byte agrees.
                let mut h = fnv(0x5EED, &[]);
                for &v in ds.features.as_slice() {
                    h = (h ^ v.to_bits()).wrapping_mul(0x100000001b3);
                }
                for &y in &ds.labels {
                    h = (h ^ y as u64).wrapping_mul(0x100000001b3);
                }
                h = (h ^ ds.n_classes as u64).wrapping_mul(0x100000001b3);
                format!("custom:{}#{h:016x}", ds.name)
            }
        };
        let partition = match &self.partition {
            PartitionSpec::TwoBlockRandom { target_fraction } => {
                format!("two-block-random({target_fraction})")
            }
            PartitionSpec::Contiguous(widths) => format!("contiguous({widths:?})"),
        };
        let colluders: Vec<usize> = self.threat.adversary_parties.iter().map(|p| p.0).collect();
        format!(
            "data={data};split={}/{}/{};partition={partition};adversary={colluders:?};model={};defense={:?};oracle={};seed={}",
            self.split.train_fraction,
            self.split.test_fraction,
            self.split.prediction_fraction,
            self.model.family(),
            self.defense.stage_descriptors(),
            self.oracle.describe(),
            self.seed,
        )
    }

    /// Stable 64-bit fingerprint of the scenario (hex string): two runs
    /// with the same fingerprint saw the same data, split, partition,
    /// threat model, model family, defense stack, oracle kind and seed.
    pub fn fingerprint(&self) -> String {
        format!("{:016x}", fnv(0xF1A, self.describe().as_bytes()))
    }

    /// Resolves the data side of the scenario: generates/clones the
    /// dataset, splits it, draws the feature partition and applies the
    /// threat model. Seed derivations match the historical experiment
    /// harness (`generate(seed)`, `split(seed ^ 0xA11CE)`,
    /// `partition(seed ^ 0xBEEF)`), so existing experiment results are
    /// unchanged.
    ///
    /// # Panics
    /// Panics when the resolved target side owns no features (nothing to
    /// infer — e.g. every party colludes).
    pub fn materialize(&self) -> ScenarioData {
        let ds = match &self.data {
            DataSpec::Paper { dataset, scale } => dataset.generate(*scale, self.seed),
            DataSpec::Custom(ds) => ds.clone(),
        };
        let split = ds.split(&self.split, self.seed ^ 0xA11CE);
        let partition = match &self.partition {
            PartitionSpec::TwoBlockRandom { target_fraction } => {
                VerticalPartition::two_block_random(
                    ds.n_features(),
                    *target_fraction,
                    self.seed ^ 0xBEEF,
                )
            }
            PartitionSpec::Contiguous(widths) => VerticalPartition::contiguous(widths),
        };
        let (adv_indices, target_indices) = self.threat.feature_split(&partition);
        assert!(
            !target_indices.is_empty(),
            "scenario leaves the target party no features to infer"
        );
        let x_adv = split
            .prediction
            .features
            .select_columns(&adv_indices)
            .expect("adversary indices in range");
        let truth = split
            .prediction
            .features
            .select_columns(&target_indices)
            .expect("target indices in range");
        ScenarioData {
            name: ds.name.clone(),
            n_classes: ds.n_classes,
            train: split.train,
            test: split.test,
            prediction: split.prediction,
            partition,
            adv_indices,
            target_indices,
            x_adv,
            truth,
        }
    }

    /// Resolves the full scenario: [`ScenarioSpec::materialize`], then
    /// train the model (seeded from the scenario seed) and deploy it as
    /// a `VflSystem`. The result is ready for
    /// [`Campaign::new`](crate::Campaign::new).
    pub fn build(self) -> ResolvedScenario {
        let data = self.materialize();
        let model = self.model.train(&data.train, self.seed ^ 0x10DE1);
        let system = Arc::new(VflSystem::from_global(
            model,
            data.partition.clone(),
            &data.prediction.features,
        ));
        // One describe() pass (it hashes every byte of a custom
        // dataset); the fingerprint is derived from it.
        let description = self.describe();
        ResolvedScenario {
            fingerprint: format!("{:016x}", fnv(0xF1A, description.as_bytes())),
            description,
            seed: self.seed,
            oracle: self.oracle,
            defense: self.defense,
            data,
            system,
        }
    }
}

/// FNV-1a over bytes with a basis tweak.
fn fnv(basis: u64, bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64 ^ basis.wrapping_mul(0x100000001b3);
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The resolved data side of a scenario (stage one of the build): the
/// splits, the feature partition, and the adversary's/target's views of
/// the prediction set.
#[derive(Debug, Clone)]
pub struct ScenarioData {
    /// Dataset display name.
    pub name: String,
    /// Number of classes `c`.
    pub n_classes: usize,
    /// Model-training partition.
    pub train: Dataset,
    /// Model-testing partition.
    pub test: Dataset,
    /// Prediction partition — the samples the adversary attacks.
    pub prediction: Dataset,
    /// The vertical feature partition.
    pub partition: VerticalPartition,
    /// Sorted global indices of the adversary coalition's features.
    pub adv_indices: Vec<usize>,
    /// Sorted global indices of the target party's features.
    pub target_indices: Vec<usize>,
    /// The coalition's columns of the prediction set (`n × d_adv`).
    pub x_adv: Matrix,
    /// Ground-truth target columns of the prediction set
    /// (`n × d_target`) — used only for evaluation.
    pub truth: Matrix,
}

impl ScenarioData {
    /// `d_target` — the unknowns an attack must reconstruct per sample.
    pub fn d_target(&self) -> usize {
        self.target_indices.len()
    }

    /// Number of samples in the prediction set.
    pub fn n_predictions(&self) -> usize {
        self.prediction.n_samples()
    }
}

/// A fully resolved scenario: data, a trained deployed model, the
/// defense stack and the oracle choice — everything a
/// [`Campaign`](crate::Campaign) session needs. Cloning is cheap-ish
/// (the system and defense are shared behind `Arc`s; the data splits
/// are copied), which lets a daemon keep one resolved template per
/// fingerprint and stamp out sessions from it.
#[derive(Clone)]
pub struct ResolvedScenario {
    pub(crate) data: ScenarioData,
    pub(crate) system: Arc<VflSystem<TrainedModel>>,
    pub(crate) defense: Arc<DefensePipeline>,
    pub(crate) oracle: OracleSpec,
    pub(crate) fingerprint: String,
    pub(crate) description: String,
    pub(crate) seed: u64,
}

impl ResolvedScenario {
    /// The resolved data side (splits, partition, adversary view).
    pub fn data(&self) -> &ScenarioData {
        &self.data
    }

    /// The trained model, as deployed (the threat model hands `θ` to the
    /// adversary).
    pub fn model(&self) -> &TrainedModel {
        self.system.model()
    }

    /// The deployed vertical FL system.
    pub fn system(&self) -> &Arc<VflSystem<TrainedModel>> {
        &self.system
    }

    /// The defense pipeline applied at the score-release boundary.
    pub fn defense(&self) -> &Arc<DefensePipeline> {
        &self.defense
    }

    /// The oracle kind this scenario's campaigns query.
    pub fn oracle_spec(&self) -> &OracleSpec {
        &self.oracle
    }

    /// The spec fingerprint (see [`ScenarioSpec::fingerprint`]).
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// The canonical scenario description.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// The scenario seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn materialize_shapes_consistent() {
        let data = ScenarioSpec::paper(PaperDataset::CreditCard)
            .with_seed(7)
            .materialize();
        assert_eq!(data.adv_indices.len() + data.target_indices.len(), 23);
        assert_eq!(data.d_target(), 7); // 30% of 23 ≈ 7
        assert_eq!(data.x_adv.cols(), 16);
        assert_eq!(data.truth.cols(), 7);
        assert_eq!(data.x_adv.rows(), data.n_predictions());
        assert_eq!(data.n_classes, 2);
    }

    #[test]
    fn materialize_deterministic_per_seed() {
        let spec = ScenarioSpec::paper(PaperDataset::BankMarketing)
            .with_partition(PartitionSpec::two_block_random(0.4))
            .with_seed(3);
        let a = spec.clone().materialize();
        let b = spec.materialize();
        assert_eq!(a.adv_indices, b.adv_indices);
        assert_eq!(a.x_adv, b.x_adv);
    }

    #[test]
    fn fingerprint_stable_and_sensitive() {
        let base = ScenarioSpec::paper(PaperDataset::CreditCard).with_seed(7);
        assert_eq!(base.fingerprint(), base.clone().fingerprint());
        let other_seed = base.clone().with_seed(8);
        assert_ne!(base.fingerprint(), other_seed.fingerprint());
        let other_model = base.clone().with_model(ModelSpec::decision_tree());
        assert_ne!(base.fingerprint(), other_model.fingerprint());
        let served = base.clone().with_oracle(OracleSpec::served());
        assert_ne!(base.fingerprint(), served.fingerprint());
        // Defense *parameters* distinguish fingerprints, not just stage
        // names.
        use fia_defense::RoundingDefense;
        let fine = base
            .clone()
            .with_defense(DefensePipeline::new().then(RoundingDefense::fine()));
        let coarse = base
            .clone()
            .with_defense(DefensePipeline::new().then(RoundingDefense::coarse()));
        assert_ne!(fine.fingerprint(), coarse.fingerprint());
    }

    #[test]
    fn build_deploys_trained_model() {
        let scenario = ScenarioSpec::paper(PaperDataset::CreditCard)
            .with_seed(11)
            .build();
        assert_eq!(scenario.model().family(), "lr");
        assert_eq!(
            scenario.system().n_samples(),
            scenario.data().n_predictions()
        );
        assert_eq!(scenario.seed(), 11);
        assert!(scenario.description().contains("model=lr"));
    }

    #[test]
    fn custom_dataset_flows_through() {
        let features = Matrix::from_fn(40, 6, |i, j| ((i * 6 + j) % 9) as f64 / 9.0);
        let labels: Vec<usize> = (0..40).map(|i| i % 2).collect();
        let ds = Dataset::new("toy", features, labels, 2);
        let data = ScenarioSpec::custom(ds)
            .with_partition(PartitionSpec::contiguous(&[4, 2]))
            .with_seed(5)
            .materialize();
        assert_eq!(data.adv_indices, vec![0, 1, 2, 3]);
        assert_eq!(data.target_indices, vec![4, 5]);
    }

    #[test]
    fn contiguous_partition_with_colluders_shrinks_target() {
        use fia_vfl::PartyId;
        let data = ScenarioSpec::paper(PaperDataset::CreditCard)
            .with_partition(PartitionSpec::contiguous(&[9, 7, 7]))
            .with_threat(ThreatModel::with_colluders(&[PartyId(2)]))
            .with_seed(3)
            .materialize();
        assert_eq!(data.d_target(), 7);
        assert_eq!(data.x_adv.cols(), 16);
    }

    #[test]
    fn custom_fingerprint_sees_labels_and_classes() {
        let features = Matrix::from_fn(10, 4, |i, j| (i * 4 + j) as f64 / 40.0);
        let spec_of = |labels: Vec<usize>, c: usize| {
            ScenarioSpec::custom(Dataset::new("toy", features.clone(), labels, c)).fingerprint()
        };
        let a = spec_of((0..10).map(|i| i % 2).collect(), 2);
        let b = spec_of((0..10).map(|i| (i + 1) % 2).collect(), 2);
        let c = spec_of((0..10).map(|i| i % 2).collect(), 3);
        assert_ne!(a, b, "different labels must change the fingerprint");
        assert_ne!(a, c, "different class count must change the fingerprint");
        assert_eq!(a, spec_of((0..10).map(|i| i % 2).collect(), 2));
    }

    #[test]
    #[should_panic(expected = "no features to infer")]
    fn all_colluding_scenario_rejected() {
        use fia_vfl::PartyId;
        let _ = ScenarioSpec::paper(PaperDataset::CreditCard)
            .with_partition(PartitionSpec::contiguous(&[16, 7]))
            .with_threat(ThreatModel::with_colluders(&[PartyId(1)]))
            .materialize();
    }

    #[test]
    #[should_panic(expected = "paper datasets only")]
    fn scale_on_custom_rejected() {
        let ds = Dataset::new("toy", Matrix::zeros(4, 2), vec![0, 1, 0, 1], 2);
        let _ = ScenarioSpec::custom(ds).with_scale(0.5);
    }
}
