//! The query budget and the oracle adapter that enforces it.
//!
//! The paper's adversary is *query-limited*: it spends a bounded number
//! of prediction requests/rows against the deployment (Section V: the
//! corpus is "collected … in the long term", i.e. at a cost). A
//! [`QueryBudget`] makes that bound a first-class constraint, and
//! [`BudgetedOracle`] enforces it *at the oracle boundary*: every
//! prediction round an attack issues passes through the adapter, so no
//! attack — however it drives the oracle — can overspend. The campaign
//! session additionally *plans* around the budget (shrinking its final
//! accumulation chunk to land exactly on the limit), but the adapter is
//! the hard stop.

use crate::checkpoint::{CheckpointError, Cursor};
use fia_core::{OracleError, PredictionOracle, QueryCost, TraceContext};
use fia_linalg::Matrix;

/// A hard limit on what an adversary session may spend against the
/// prediction oracle, in deployment-metered units ([`QueryCost`]):
/// prediction requests and/or total confidence rows. `None` on an axis
/// means that axis is unlimited.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryBudget {
    /// Maximum prediction requests (oracle rounds).
    pub max_queries: Option<u64>,
    /// Maximum total confidence rows across all requests.
    pub max_rows: Option<u64>,
}

impl QueryBudget {
    /// No limit on either axis.
    pub fn unlimited() -> Self {
        QueryBudget::default()
    }

    /// Limit the total confidence rows the session may obtain.
    pub fn rows(max_rows: u64) -> Self {
        QueryBudget {
            max_queries: None,
            max_rows: Some(max_rows),
        }
    }

    /// Limit the number of prediction requests the session may issue.
    pub fn queries(max_queries: u64) -> Self {
        QueryBudget {
            max_queries: Some(max_queries),
            max_rows: None,
        }
    }

    /// Adds a row cap to this budget.
    pub fn with_rows(mut self, max_rows: u64) -> Self {
        self.max_rows = Some(max_rows);
        self
    }

    /// Adds a request cap to this budget.
    pub fn with_queries(mut self, max_queries: u64) -> Self {
        self.max_queries = Some(max_queries);
        self
    }

    /// `true` when neither axis is capped.
    pub fn is_unlimited(&self) -> bool {
        self.max_queries.is_none() && self.max_rows.is_none()
    }

    /// Rows still affordable after `spent`, respecting *both* axes:
    /// `Some(0)` when the next request would be rejected outright,
    /// `None` when unlimited.
    pub fn affordable_rows(&self, spent: &QueryCost) -> Option<u64> {
        if let Some(q) = self.max_queries {
            if spent.queries >= q {
                return Some(0);
            }
        }
        self.max_rows.map(|r| r.saturating_sub(spent.rows))
    }

    /// Whether one more request of `rows` rows fits after `spent`.
    pub fn allows(&self, spent: &QueryCost, rows: u64) -> bool {
        if let Some(q) = self.max_queries {
            if spent.queries + 1 > q {
                return false;
            }
        }
        if let Some(r) = self.max_rows {
            if spent.rows + rows > r {
                return false;
            }
        }
        true
    }

    /// Compact human-readable form for reports (`"rows≤500"`,
    /// `"queries≤10,rows≤500"`, `"unlimited"`).
    pub fn describe(&self) -> String {
        match (self.max_queries, self.max_rows) {
            (None, None) => "unlimited".to_string(),
            (Some(q), None) => format!("queries≤{q}"),
            (None, Some(r)) => format!("rows≤{r}"),
            (Some(q), Some(r)) => format!("queries≤{q},rows≤{r}"),
        }
    }
}

/// The serializable budget meter: a [`QueryBudget`] plus everything
/// already [spent](QueryCost) against it — the state a checkpointed
/// session must carry across process restarts so the budget bounds the
/// *whole* session, not each incarnation.
///
/// Serializes as a small versioned blob (version byte, presence flags,
/// little-endian `u64`s); decoding rejects version skew, truncation and
/// trailing bytes with a typed [`CheckpointError`] rather than
/// panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BudgetMeter {
    /// The session's budget.
    pub budget: QueryBudget,
    /// What the session has spent so far.
    pub spent: QueryCost,
}

/// Current budget-meter blob version.
const METER_VERSION: u8 = 1;

impl BudgetMeter {
    /// Serializes the meter: `[version, flags, caps…, spent…]` where
    /// `flags` bit 0 marks a query cap and bit 1 a row cap.
    pub fn to_blob(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(42);
        out.push(METER_VERSION);
        let mut flags = 0u8;
        if self.budget.max_queries.is_some() {
            flags |= 1;
        }
        if self.budget.max_rows.is_some() {
            flags |= 2;
        }
        out.push(flags);
        if let Some(q) = self.budget.max_queries {
            out.extend_from_slice(&q.to_le_bytes());
        }
        if let Some(r) = self.budget.max_rows {
            out.extend_from_slice(&r.to_le_bytes());
        }
        out.extend_from_slice(&self.spent.queries.to_le_bytes());
        out.extend_from_slice(&self.spent.rows.to_le_bytes());
        out.extend_from_slice(&self.spent.cached_rows.to_le_bytes());
        out
    }

    /// Decodes a blob produced by [`BudgetMeter::to_blob`].
    pub fn from_blob(blob: &[u8]) -> Result<Self, CheckpointError> {
        let mut c = Cursor::new(blob);
        let version = c.u8()?;
        if version != METER_VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let flags = c.u8()?;
        if flags > 3 {
            return Err(CheckpointError::Corrupt("unknown budget-meter flags"));
        }
        let max_queries = if flags & 1 != 0 { Some(c.u64()?) } else { None };
        let max_rows = if flags & 2 != 0 { Some(c.u64()?) } else { None };
        let spent = QueryCost {
            queries: c.u64()?,
            rows: c.u64()?,
            cached_rows: c.u64()?,
        };
        if c.remaining() != 0 {
            return Err(CheckpointError::Corrupt(
                "trailing bytes after budget meter",
            ));
        }
        Ok(BudgetMeter {
            budget: QueryBudget {
                max_queries,
                max_rows,
            },
            spent,
        })
    }
}

/// A [`PredictionOracle`] adapter that meters every round against a
/// [`QueryBudget`] and *refuses* rounds that would overspend.
///
/// Enforcement lives here — below the attack, above the transport — so
/// the guarantee holds for any driver: the campaign session, a raw
/// `accumulate_batch` loop, or an attack issuing oracle rounds itself.
/// The adapter also meters the session's own [`QueryCost`], folding in
/// the rows the deployment answered from its released-score cache (the
/// delta of the inner oracle's own meter).
pub struct BudgetedOracle<'a> {
    inner: &'a mut dyn PredictionOracle,
    budget: QueryBudget,
    spent: QueryCost,
    /// The inner oracle's cached-row meter at adapter construction;
    /// `spent.cached_rows` reports the delta beyond `base_cached`, on
    /// top of whatever prior spend the adapter was seeded with.
    base_cached: u64,
    prior_cached: u64,
}

impl<'a> BudgetedOracle<'a> {
    /// Wraps `inner` under `budget`, starting from zero spend.
    pub fn new(inner: &'a mut dyn PredictionOracle, budget: QueryBudget) -> Self {
        Self::resuming(inner, budget, QueryCost::default())
    }

    /// Wraps `inner` under `budget`, counting `spent` as already spent —
    /// the resume path: a checkpointed session carries its meter across
    /// adapter instances so the budget bounds the *whole* session, not
    /// each run.
    pub fn resuming(
        inner: &'a mut dyn PredictionOracle,
        budget: QueryBudget,
        spent: QueryCost,
    ) -> Self {
        let base_cached = inner.query_cost().cached_rows;
        BudgetedOracle {
            inner,
            budget,
            spent,
            base_cached,
            prior_cached: spent.cached_rows,
        }
    }

    /// What this adapter has metered so far (including any seed spend).
    pub fn spent(&self) -> QueryCost {
        self.spent
    }

    /// Rows still affordable under the budget (`None` = unlimited).
    pub fn affordable_rows(&self) -> Option<u64> {
        self.budget.affordable_rows(&self.spent)
    }
}

impl PredictionOracle for BudgetedOracle<'_> {
    fn n_classes(&self) -> usize {
        self.inner.n_classes()
    }

    fn n_samples(&self) -> usize {
        self.inner.n_samples()
    }

    fn confidences(&mut self, indices: &[usize]) -> Result<Matrix, OracleError> {
        let rows = indices.len() as u64;
        if !self.budget.allows(&self.spent, rows) {
            return Err(OracleError(format!(
                "query budget exhausted: {} spent {} queries / {} rows, next round wants {rows} rows",
                self.budget.describe(),
                self.spent.queries,
                self.spent.rows,
            )));
        }
        let v = self.inner.confidences(indices)?;
        self.spent.queries += 1;
        self.spent.rows += rows;
        self.spent.cached_rows = self.prior_cached
            + self
                .inner
                .query_cost()
                .cached_rows
                .saturating_sub(self.base_cached);
        Ok(v)
    }

    fn query_cost(&self) -> QueryCost {
        self.spent
    }

    fn set_trace_context(&mut self, ctx: Option<TraceContext>) {
        // Budgeting is cost-transparent to tracing: forward, so a
        // budgeted remote oracle still stamps its wire queries.
        self.inner.set_trace_context(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic 3-class toy oracle with a fake cache meter.
    struct ToyOracle {
        cost: QueryCost,
    }

    impl PredictionOracle for ToyOracle {
        fn n_classes(&self) -> usize {
            3
        }
        fn n_samples(&self) -> usize {
            100
        }
        fn confidences(&mut self, indices: &[usize]) -> Result<Matrix, OracleError> {
            self.cost.queries += 1;
            self.cost.rows += indices.len() as u64;
            // Pretend every second row came from a cache.
            self.cost.cached_rows += indices.len() as u64 / 2;
            Ok(Matrix::from_fn(indices.len(), 3, |i, j| {
                (indices[i] * 3 + j) as f64
            }))
        }
        fn query_cost(&self) -> QueryCost {
            self.cost
        }
    }

    #[test]
    fn unlimited_budget_passes_everything_through() {
        let mut toy = ToyOracle {
            cost: QueryCost::default(),
        };
        let mut b = BudgetedOracle::new(&mut toy, QueryBudget::unlimited());
        let v = b.confidences(&[0, 1, 2]).unwrap();
        assert_eq!(v.shape(), (3, 3));
        assert_eq!(b.spent().queries, 1);
        assert_eq!(b.spent().rows, 3);
        assert_eq!(b.affordable_rows(), None);
    }

    #[test]
    fn row_budget_rejects_overspending_round() {
        let mut toy = ToyOracle {
            cost: QueryCost::default(),
        };
        let mut b = BudgetedOracle::new(&mut toy, QueryBudget::rows(5));
        assert!(b.confidences(&[0, 1, 2]).is_ok());
        assert_eq!(b.affordable_rows(), Some(2));
        let err = b.confidences(&[3, 4, 5]).unwrap_err();
        assert!(err.to_string().contains("budget exhausted"), "{err}");
        // The rejected round spent nothing.
        assert_eq!(b.spent().rows, 3);
        assert!(b.confidences(&[3, 4]).is_ok());
        assert_eq!(b.spent().rows, 5);
        assert_eq!(b.affordable_rows(), Some(0));
    }

    #[test]
    fn query_budget_counts_rounds() {
        let mut toy = ToyOracle {
            cost: QueryCost::default(),
        };
        let mut b = BudgetedOracle::new(&mut toy, QueryBudget::queries(2));
        assert!(b.confidences(&[0]).is_ok());
        assert!(b.confidences(&[1]).is_ok());
        assert!(b.confidences(&[2]).is_err());
        assert_eq!(b.spent().queries, 2);
        assert_eq!(b.affordable_rows(), Some(0));
    }

    #[test]
    fn cached_rows_metered_as_inner_delta() {
        let mut toy = ToyOracle {
            cost: QueryCost {
                queries: 7,
                rows: 40,
                cached_rows: 10,
            },
        };
        // Pre-existing inner traffic must not leak into this session.
        let mut b = BudgetedOracle::new(&mut toy, QueryBudget::unlimited());
        b.confidences(&[0, 1, 2, 3]).unwrap();
        assert_eq!(b.spent().cached_rows, 2);
        assert_eq!(b.spent().rows, 4);
    }

    #[test]
    fn resuming_counts_prior_spend_against_budget() {
        let mut toy = ToyOracle {
            cost: QueryCost::default(),
        };
        let prior = QueryCost {
            queries: 1,
            rows: 4,
            cached_rows: 1,
        };
        let mut b = BudgetedOracle::resuming(&mut toy, QueryBudget::rows(6), prior);
        assert_eq!(b.affordable_rows(), Some(2));
        assert!(b.confidences(&[0, 1, 2]).is_err());
        assert!(b.confidences(&[0, 1]).is_ok());
        let spent = b.spent();
        assert_eq!(spent.rows, 6);
        assert_eq!(spent.queries, 2);
        // cached = prior 1 + this run's delta (2/2 = 1).
        assert_eq!(spent.cached_rows, 2);
    }

    #[test]
    fn meter_blob_round_trips_every_flag_combination() {
        let spent = QueryCost {
            queries: 3,
            rows: u64::MAX - 7,
            cached_rows: 11,
        };
        for budget in [
            QueryBudget::unlimited(),
            QueryBudget::queries(9),
            QueryBudget::rows(u64::MAX),
            QueryBudget::queries(2).with_rows(500),
        ] {
            let m = BudgetMeter { budget, spent };
            assert_eq!(BudgetMeter::from_blob(&m.to_blob()), Ok(m));
        }
    }

    #[test]
    fn meter_blob_rejects_skew_truncation_and_trailing_bytes() {
        use crate::checkpoint::CheckpointError;
        let m = BudgetMeter {
            budget: QueryBudget::queries(2).with_rows(500),
            spent: QueryCost::default(),
        };
        let blob = m.to_blob();
        for cut in 0..blob.len() {
            assert_eq!(
                BudgetMeter::from_blob(&blob[..cut]),
                Err(CheckpointError::Truncated),
                "cut at {cut}"
            );
        }
        let mut extra = blob.clone();
        extra.push(0);
        assert!(matches!(
            BudgetMeter::from_blob(&extra),
            Err(CheckpointError::Corrupt(_))
        ));
        let mut skewed = blob.clone();
        skewed[0] = 7;
        assert_eq!(
            BudgetMeter::from_blob(&skewed),
            Err(CheckpointError::UnsupportedVersion(7))
        );
        let mut bad_flags = blob;
        bad_flags[1] = 0xF0;
        assert!(matches!(
            BudgetMeter::from_blob(&bad_flags),
            Err(CheckpointError::Corrupt(_))
        ));
    }

    #[test]
    fn describe_is_compact() {
        assert_eq!(QueryBudget::unlimited().describe(), "unlimited");
        assert_eq!(QueryBudget::rows(9).describe(), "rows≤9");
        assert_eq!(
            QueryBudget::queries(2).with_rows(9).describe(),
            "queries≤2,rows≤9"
        );
        assert!(QueryBudget::unlimited().is_unlimited());
        assert!(!QueryBudget::rows(1).is_unlimited());
    }
}
