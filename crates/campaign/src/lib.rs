#![warn(missing_docs)]

//! # fia-campaign — one typed API for the whole adversary loop
//!
//! The paper's adversary (Luo et al., ICDE 2021) is a *query-limited*
//! attacker who composes a scenario — party split, model family,
//! defense, prediction interface — and then spends a bounded query
//! budget against it. This crate is that loop as one typed surface,
//! the front door every experiment, example and test drives:
//!
//! 1. **Describe** the scenario with a [`ScenarioSpec`] builder:
//!    dataset source ([`DataSpec`]), split, vertical partition
//!    ([`PartitionSpec`]), collusion structure
//!    ([`fia_vfl::ThreatModel`]), model family ([`ModelSpec`] over LR /
//!    NN / DT / RF), defense stack ([`fia_defense::DefensePipeline`])
//!    and the oracle kind ([`OracleSpec`]: query the deployment
//!    in-process, or spawn a real `fia-serve` `PredictionServer` and
//!    query it over TCP).
//! 2. **Build** it (`spec.build()`): the dataset is generated and
//!    split, the model trained, the deployment stood up — all seeded,
//!    with a stable [`ScenarioSpec::fingerprint`] so runs are
//!    reproducible and comparable.
//! 3. **Run** a [`Campaign`]: the session accumulates the `(x_adv, v)`
//!    corpus in resumable chunks under a hard [`QueryBudget`] (enforced
//!    below the attack by a [`BudgetedOracle`] adapter, so no attack
//!    can overspend), mounts the configured [`AttackSpec`]s over
//!    whatever corpus the budget allowed, streams
//!    [`CampaignEvent`]s to a [`CampaignObserver`], and ends in one
//!    serializable [`CampaignReport`] — attack metrics, the session's
//!    [`fia_core::QueryCost`] as the deployment metered it, scenario
//!    fingerprint and seed. Exhausting the budget is not an error: the
//!    report carries partial results under a typed
//!    [`CampaignOutcome::BudgetExhausted`].
//!
//! ```no_run
//! use fia_campaign::{AttackSpec, Campaign, NullObserver, QueryBudget, ScenarioSpec};
//! use fia_data::PaperDataset;
//!
//! let scenario = ScenarioSpec::paper(PaperDataset::CreditCard)
//!     .with_scale(0.02)
//!     .with_seed(7)
//!     .build();
//! let mut campaign = Campaign::new(scenario)
//!     .with_attack(AttackSpec::esa())
//!     .with_budget(QueryBudget::rows(500));
//! let report = campaign.run(&mut NullObserver).unwrap();
//! println!("{}", report.to_json());
//! ```

mod attack;
mod budget;
mod checkpoint;
mod error;
mod event;
mod model;
mod report;
mod session;
mod spec;

pub use attack::AttackSpec;
pub use budget::{BudgetMeter, BudgetedOracle, QueryBudget};
pub use checkpoint::{CampaignCheckpoint, CheckpointError};
pub use error::CampaignError;
pub use event::{CampaignEvent, CampaignObserver, EventLog, EventParseError, NullObserver};
pub use model::{ModelSpec, TrainedModel};
pub use report::{AttackReport, CampaignOutcome, CampaignReport};
pub use session::{Campaign, InProcessOracle, StepOutcome};
pub use spec::{
    DataSpec, OracleSpec, PartitionSpec, ResolvedScenario, ScenarioData, ScenarioSpec, ServedConfig,
};
