//! The budgeted adversary session.
//!
//! A [`Campaign`] drives the paper's end-to-end adversary loop — query
//! the deployment, accumulate the `(x_adv, v)` corpus, invert it — over
//! whatever oracle the scenario resolved ([`OracleSpec::InProcess`] or a
//! real spawned `PredictionServer` for [`OracleSpec::Served`]), in
//! resumable chunks under a hard [`QueryBudget`]:
//!
//! * every oracle round passes through a [`BudgetedOracle`], so no
//!   attack can overspend — the session additionally *plans* its final
//!   chunk to land exactly on the budget;
//! * when the budget runs out mid-accumulation the session does not
//!   fail: the configured attacks run over the partial corpus and the
//!   report carries a typed [`CampaignOutcome::BudgetExhausted`];
//! * the session checkpoints itself — extending the budget
//!   ([`Campaign::set_budget`]) and calling [`Campaign::run`] again
//!   resumes accumulation where it stopped, and reproduces the
//!   unbudgeted result bit-for-bit when the release boundary is
//!   deterministic per row (identity/rounding pipelines; defenses
//!   seeded from batch composition release different bytes under
//!   different chunkings — see `ScenarioSpec::with_defense`);
//! * progress streams to a [`CampaignObserver`] as
//!   [`CampaignEvent`](crate::CampaignEvent)s, and the run ends in one
//!   serializable [`CampaignReport`].

use crate::attack::AttackSpec;
use crate::budget::{BudgetedOracle, QueryBudget};
use crate::checkpoint::{CampaignCheckpoint, CheckpointError};
use crate::error::CampaignError;
use crate::event::{CampaignEvent, CampaignObserver};
use crate::model::TrainedModel;
use crate::report::{AttackReport, CampaignOutcome, CampaignReport};
use crate::spec::{OracleSpec, ResolvedScenario};
use fia_core::{metrics, AttackEngine, PredictionOracle, QueryBatch, QueryCost, TraceContext};
use fia_defense::{DefensePipeline, ScoreDefense};
use fia_linalg::Matrix;
use fia_models::PredictProba;
use fia_serve::{
    AuditSummary, MetricsReport, PredictionServer, RemoteOracle, ServeConfig, ServerHandle,
};
use fia_telemetry::{global, Counter, Span, TelemetrySnapshot, Tracer};
use fia_vfl::VflSystem;
use std::sync::Arc;
use std::time::Instant;

/// The in-process deployment as the adversary's oracle: one protocol
/// round per call with the scenario's [`DefensePipeline`] applied at
/// the score-release boundary — the same release semantics the served
/// oracle applies inside the prediction server.
pub struct InProcessOracle {
    system: VflSystem<TrainedModel>,
    defense: Arc<DefensePipeline>,
    cost: QueryCost,
}

impl InProcessOracle {
    /// Wraps a deployment replica and its defense stack.
    pub fn new(system: VflSystem<TrainedModel>, defense: Arc<DefensePipeline>) -> Self {
        InProcessOracle {
            system,
            defense,
            cost: QueryCost::default(),
        }
    }
}

impl PredictionOracle for InProcessOracle {
    fn n_classes(&self) -> usize {
        self.system.model().n_classes()
    }

    fn n_samples(&self) -> usize {
        self.system.n_samples()
    }

    fn confidences(&mut self, indices: &[usize]) -> Result<Matrix, fia_core::OracleError> {
        let released = self
            .defense
            .defend_batch(&self.system.predict_batch(indices));
        self.cost.queries += 1;
        self.cost.rows += indices.len() as u64;
        Ok(released)
    }

    fn query_cost(&self) -> QueryCost {
        self.cost
    }
}

/// The resolved oracle a session queries: either the in-process
/// deployment, or a spawned prediction server plus the client
/// connection into it.
enum OracleHandle {
    InProcess(InProcessOracle),
    Served {
        /// Owned so the server lives exactly as long as the campaign
        /// needs it; dropping the handle tears the server down.
        _server: ServerHandle,
        client: RemoteOracle,
    },
    /// A caller-attached oracle ([`Campaign::attach_oracle`]): the
    /// session queries it but does not own its deployment — the
    /// campaign daemon uses this to point many jobs at one shared
    /// `PredictionServer`.
    External(Box<dyn PredictionOracle + Send>),
}

impl OracleHandle {
    fn oracle_mut(&mut self) -> &mut dyn PredictionOracle {
        match self {
            OracleHandle::InProcess(o) => o,
            OracleHandle::Served { client, .. } => client,
            OracleHandle::External(o) => o.as_mut(),
        }
    }
}

/// What one [`Campaign::step`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// One chunk was accumulated; more rows remain in the plan.
    Chunk,
    /// The budget cannot afford another row; accumulation is over for
    /// this run ([`Campaign::finalize`] will attack the partial corpus).
    Exhausted,
    /// The planned corpus is complete.
    Done,
}

/// Per-run state [`Campaign::begin`] opens and [`Campaign::finalize`]
/// consumes: the telemetry before-image, the root span, the run clock
/// and the global counters.
struct RunCtx {
    telemetry_before: TelemetrySnapshot,
    run_span: Span,
    run_started: Instant,
    exhausted: bool,
    chunks_total: Arc<Counter>,
    rows_total: Arc<Counter>,
    queries_total: Arc<Counter>,
    cached_rows_total: Arc<Counter>,
}

/// A budgeted adversary session over a resolved scenario. See the
/// module docs for the lifecycle.
pub struct Campaign {
    scenario: ResolvedScenario,
    attacks: Vec<AttackSpec>,
    budget: QueryBudget,
    chunk: usize,
    engine: AttackEngine,
    // ---- checkpointed progress ----
    rows_done: usize,
    confidences: Matrix,
    spent: QueryCost,
    chunks_issued: usize,
    oracle: Option<OracleHandle>,
    run_ctx: Option<RunCtx>,
    tracer: Tracer,
    /// Deterministic distributed-trace id stamped on every traced wire
    /// query (derived from fingerprint and seed).
    trace_id: u64,
    /// Audit-ledger session tag declared to a served oracle.
    session_tag: Option<String>,
}

/// Deterministic trace id: FNV-1a over the scenario fingerprint, XORed
/// with the seed — stable across reruns of one scenario, distinct
/// across scenarios and seeds.
fn derive_trace_id(fingerprint: &str, seed: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in fingerprint.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h ^ seed
}

impl Campaign {
    /// A session over `scenario` with no attacks configured yet, an
    /// unlimited budget, and 64-row accumulation chunks.
    pub fn new(scenario: ResolvedScenario) -> Self {
        let c = scenario.data.n_classes;
        let trace_id = derive_trace_id(&scenario.fingerprint, scenario.seed);
        Campaign {
            scenario,
            attacks: Vec::new(),
            budget: QueryBudget::unlimited(),
            chunk: 64,
            engine: AttackEngine::new(),
            rows_done: 0,
            confidences: Matrix::zeros(0, c),
            spent: QueryCost::default(),
            chunks_issued: 0,
            oracle: None,
            run_ctx: None,
            tracer: Tracer::new(),
            trace_id,
            session_tag: None,
        }
    }

    /// Rebuilds a session from a [`CampaignCheckpoint`] — the crash
    /// recovery path. The checkpoint's fingerprint must match the
    /// scenario it is being restored into (a fingerprint covers data,
    /// split, model, defense, oracle kind and seed, so a match
    /// guarantees the corpus prefix is the one this scenario would have
    /// released); a mismatch or an inconsistent blob is a typed
    /// [`CheckpointError`], never a panic.
    pub fn restore(
        scenario: ResolvedScenario,
        cp: &CampaignCheckpoint,
    ) -> Result<Self, CheckpointError> {
        if cp.fingerprint != scenario.fingerprint {
            return Err(CheckpointError::FingerprintMismatch {
                expected: scenario.fingerprint.clone(),
                found: cp.fingerprint.clone(),
            });
        }
        if cp.confidences.rows() != cp.rows_done || cp.confidences.cols() != scenario.data.n_classes
        {
            return Err(CheckpointError::Corrupt(
                "checkpoint corpus shape disagrees with the scenario",
            ));
        }
        if cp.chunk == 0 {
            return Err(CheckpointError::Corrupt("checkpoint chunk size is zero"));
        }
        let mut c = Campaign::new(scenario);
        c.budget = cp.budget;
        c.chunk = cp.chunk;
        c.rows_done = cp.rows_done;
        c.confidences = cp.confidences.clone();
        c.spent = cp.spent;
        c.chunks_issued = cp.chunks_issued;
        Ok(c)
    }

    /// Captures the session's resumable state. Valid between
    /// [`Campaign::step`] calls (the corpus and the cost meter are
    /// mutually consistent there); the blob form is
    /// [`CampaignCheckpoint::to_blob`].
    pub fn checkpoint(&self) -> CampaignCheckpoint {
        CampaignCheckpoint {
            fingerprint: self.scenario.fingerprint.clone(),
            seed: self.scenario.seed,
            budget: self.budget,
            spent: self.spent,
            rows_done: self.rows_done,
            chunks_issued: self.chunks_issued,
            chunk: self.chunk,
            confidences: self.confidences.clone(),
        }
    }

    /// Attaches a caller-owned oracle instead of letting the session
    /// resolve one from the scenario spec — how the campaign daemon
    /// points many jobs at one shared `PredictionServer` deployment.
    /// The session queries (and budgets, and traces) the attached
    /// oracle exactly as it would its own; it never tears the backing
    /// deployment down.
    pub fn attach_oracle(&mut self, oracle: Box<dyn PredictionOracle + Send>) {
        self.oracle = Some(OracleHandle::External(oracle));
    }

    /// Adds an attack to mount over the accumulated corpus.
    pub fn with_attack(mut self, attack: AttackSpec) -> Self {
        self.attacks.push(attack);
        self
    }

    /// Adds several attacks (run in order over the same corpus).
    pub fn with_attacks(mut self, attacks: impl IntoIterator<Item = AttackSpec>) -> Self {
        self.attacks.extend(attacks);
        self
    }

    /// Sets the session's query budget.
    pub fn with_budget(mut self, budget: QueryBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the accumulation chunk (rows per oracle round).
    pub fn with_chunk(mut self, rows: usize) -> Self {
        self.chunk = rows.max(1);
        self
    }

    /// Overrides the attack engine (worker count, stripe size).
    pub fn with_engine(mut self, engine: AttackEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Replaces the budget mid-session — the resume path: after a
    /// [`CampaignOutcome::BudgetExhausted`] run, raise the budget and
    /// [`Campaign::run`] again to continue accumulating where the
    /// session stopped.
    pub fn set_budget(&mut self, budget: QueryBudget) {
        self.budget = budget;
    }

    /// The resolved scenario this session attacks.
    pub fn scenario(&self) -> &ResolvedScenario {
        &self.scenario
    }

    /// Rows accumulated so far (across runs).
    pub fn rows_done(&self) -> usize {
        self.rows_done
    }

    /// Rows the full campaign plans to accumulate.
    pub fn rows_planned(&self) -> usize {
        self.scenario.data.n_predictions()
    }

    /// Accumulation chunks issued so far (across runs).
    pub fn chunks_issued(&self) -> usize {
        self.chunks_issued
    }

    /// The session's query budget.
    pub fn budget(&self) -> QueryBudget {
        self.budget
    }

    /// What the session has spent so far, as metered at the oracle
    /// boundary.
    pub fn spent(&self) -> QueryCost {
        self.spent
    }

    /// The served oracle's live server metrics (`None` for in-process
    /// sessions or before the first run).
    pub fn server_metrics(&mut self) -> Option<MetricsReport> {
        match self.oracle.as_mut()? {
            OracleHandle::Served { client, .. } => client.server_metrics().ok(),
            _ => None,
        }
    }

    /// A live Prometheus-style scrape of the served oracle's telemetry
    /// surface (`None` for in-process sessions or before the first run).
    pub fn server_metrics_text(&mut self) -> Option<String> {
        match self.oracle.as_mut()? {
            OracleHandle::Served { client, .. } => client.metrics_text().ok(),
            _ => None,
        }
    }

    /// The session's distributed-trace id (see
    /// [`CampaignReport::trace_id`]).
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// The audit-ledger session tag declared to a served oracle
    /// (`None` for in-process sessions or before the first run).
    pub fn session_tag(&self) -> Option<&str> {
        self.session_tag.as_deref()
    }

    /// The served oracle's span stream as JSONL (`None` for in-process
    /// sessions or before the first run).
    pub fn server_trace_jsonl(&mut self) -> Option<String> {
        match self.oracle.as_mut()? {
            OracleHandle::Served { client, .. } => client.server_trace_jsonl().ok(),
            _ => None,
        }
    }

    /// The served oracle's per-client audit ledger (`None` for
    /// in-process sessions or before the first run).
    pub fn server_audit(&mut self) -> Option<AuditSummary> {
        match self.oracle.as_mut()? {
            OracleHandle::Served { client, .. } => client.audit_report().ok(),
            _ => None,
        }
    }

    /// The session's tracer: every `run()` files a `campaign.run` root
    /// span with per-chunk and per-attack children under it.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The finished spans so far as JSONL (one span per line).
    pub fn trace_jsonl(&self) -> String {
        self.tracer.to_jsonl()
    }

    /// Tears down the resolved oracle (shuts a served scenario's
    /// prediction server down). Also happens on drop.
    pub fn shutdown(&mut self) {
        self.oracle = None;
    }

    /// Resets the accumulated corpus and cost meter — but keeps the
    /// resolved oracle alive — and runs the session again from row zero.
    /// Against a served scenario with a released-score cache this is the
    /// repeat-campaign experiment: the second pass is answered from the
    /// cache (visible as `cached_rows` in the new report) and, because
    /// the cache re-releases first-released bytes, teaches the adversary
    /// nothing new.
    pub fn rerun(
        &mut self,
        observer: &mut dyn CampaignObserver,
    ) -> Result<CampaignReport, CampaignError> {
        self.rows_done = 0;
        self.confidences = Matrix::zeros(0, self.scenario.data.n_classes);
        self.spent = QueryCost::default();
        self.chunks_issued = 0;
        self.run(observer)
    }

    /// Runs (or resumes) the session: accumulate the corpus in chunks
    /// under the budget, mount every configured attack over whatever
    /// corpus the budget allowed, and return the report. Emits
    /// [`CampaignEvent`](crate::CampaignEvent)s to `observer`
    /// throughout. Equivalent to [`Campaign::begin`], [`Campaign::step`]
    /// until the plan or budget is spent, then [`Campaign::finalize`] —
    /// the decomposed form is what the campaign daemon drives so it can
    /// checkpoint (and be killed) between any two chunks.
    pub fn run(
        &mut self,
        observer: &mut dyn CampaignObserver,
    ) -> Result<CampaignReport, CampaignError> {
        self.begin(observer)?;
        while self.step(observer)? == StepOutcome::Chunk {}
        self.finalize(observer)
    }

    /// Opens a run: validates the attack/model pairing, resolves the
    /// oracle, files the `campaign.run` root span and emits
    /// [`CampaignEvent::Started`]. Must precede [`Campaign::step`] /
    /// [`Campaign::finalize`]; calling it again abandons the previous
    /// unfinalized run context.
    pub fn begin(&mut self, observer: &mut dyn CampaignObserver) -> Result<(), CampaignError> {
        // Fail a misconfigured session before it spends anything: the
        // attack/model pairing is fully determined by the specs, so an
        // incompatibility must not cost a single oracle round.
        for spec in &self.attacks {
            spec.check_model(self.scenario.system.model())?;
        }
        self.ensure_oracle()?;
        let rows_planned = self.scenario.data.n_predictions();

        // Telemetry: a `campaign.run` root span for this invocation and
        // the before-image of the process-global registry, so the report
        // can carry exactly what *this run* added (chunks, rows, kernel
        // calls, attack phases) as a snapshot delta.
        let telemetry_before = global().snapshot();
        let chunks_total = global().counter(
            "fia_campaign_chunks_total",
            "Accumulation chunks answered across campaign sessions.",
        );
        let rows_total = global().counter(
            "fia_campaign_rows_total",
            "Corpus rows accumulated across campaign sessions.",
        );
        let queries_total = global().counter(
            "fia_campaign_queries_total",
            "Oracle rounds issued across campaign sessions.",
        );
        let cached_rows_total = global().counter(
            "fia_campaign_cached_rows_total",
            "Rows the deployment served from its released-score cache.",
        );
        let run_span = self.tracer.root("campaign.run");
        run_span.record_str("fingerprint", &self.scenario.fingerprint);
        run_span.record_u64("trace_id", self.trace_id);
        let run_started = Instant::now();

        observer.on_event(&CampaignEvent::Started {
            fingerprint: self.scenario.fingerprint.clone(),
            rows_planned,
            rows_done: self.rows_done,
            budget: self.budget,
        });
        self.run_ctx = Some(RunCtx {
            telemetry_before,
            run_span,
            run_started,
            exhausted: false,
            chunks_total,
            rows_total,
            queries_total,
            cached_rows_total,
        });
        Ok(())
    }

    /// Accumulates one chunk under the budget (between a
    /// [`Campaign::begin`] and a [`Campaign::finalize`]). Between two
    /// `step` calls the session is checkpoint-consistent
    /// ([`Campaign::checkpoint`]): the corpus, cursor and cost meter all
    /// describe the same prefix.
    ///
    /// # Panics
    /// Panics when called without [`Campaign::begin`].
    pub fn step(
        &mut self,
        observer: &mut dyn CampaignObserver,
    ) -> Result<StepOutcome, CampaignError> {
        let rows_planned = self.scenario.data.n_predictions();
        if self.rows_done >= rows_planned {
            return Ok(StepOutcome::Done);
        }
        let ctx = self.run_ctx.as_mut().expect("begin() must precede step()");
        let handle = self.oracle.as_mut().expect("begin() resolved the oracle");
        let mut adapter = BudgetedOracle::resuming(handle.oracle_mut(), self.budget, self.spent);
        let remaining_plan = rows_planned - self.rows_done;
        let take = match adapter.affordable_rows() {
            None => self.chunk.min(remaining_plan),
            Some(a) => self.chunk.min(remaining_plan).min(a as usize),
        };
        if take == 0 {
            ctx.exhausted = true;
            return Ok(StepOutcome::Exhausted);
        }
        let indices: Vec<usize> = (self.rows_done..self.rows_done + take).collect();
        let chunk_span = ctx.run_span.child("campaign.chunk");
        chunk_span.record_u64("chunk", self.chunks_issued as u64);
        chunk_span.record_u64("rows", take as u64);
        // Stamp this chunk's wire queries with the chunk span as
        // remote parent: the server's `serve.request` spans link
        // here, which is what the merged trace resolves on.
        adapter.set_trace_context(Some(TraceContext {
            trace_id: self.trace_id,
            parent_span: chunk_span.id(),
        }));
        let before_chunk = self.spent;
        let chunk_started = Instant::now();
        let v = adapter.confidences(&indices);
        let duration = chunk_started.elapsed();
        // Persist the meter before surfacing any error: a chunk
        // that failed mid-run must leave the checkpoint
        // consistent (spent in sync with the accumulated rows),
        // or a resumed session would under-count prior spend
        // and could overrun the hard budget.
        self.spent = adapter.spent();
        adapter.set_trace_context(None);
        chunk_span.record_u64("queries", self.spent.queries - before_chunk.queries);
        chunk_span.record_u64(
            "cached_rows",
            self.spent.cached_rows - before_chunk.cached_rows,
        );
        chunk_span.finish();
        let v = v?;
        self.confidences = self
            .confidences
            .vstack(&v)
            .expect("oracle answers a fixed class width");
        self.rows_done += take;
        self.chunks_issued += 1;
        ctx.chunks_total.inc();
        ctx.rows_total.add(take as u64);
        ctx.queries_total
            .add(self.spent.queries - before_chunk.queries);
        ctx.cached_rows_total
            .add(self.spent.cached_rows - before_chunk.cached_rows);
        observer.on_event(&CampaignEvent::ChunkDone {
            chunk: self.chunks_issued - 1,
            rows_done: self.rows_done,
            rows_planned,
            cost: self.spent,
            duration,
            elapsed: ctx.run_started.elapsed(),
        });
        Ok(if self.rows_done >= rows_planned {
            StepOutcome::Done
        } else {
            StepOutcome::Chunk
        })
    }

    /// Closes a run: emits [`CampaignEvent::BudgetExhausted`] when the
    /// budget cut accumulation short, mounts every configured attack
    /// over the (possibly partial) corpus, finishes the root span and
    /// returns the [`CampaignReport`].
    ///
    /// # Panics
    /// Panics when called without [`Campaign::begin`].
    pub fn finalize(
        &mut self,
        observer: &mut dyn CampaignObserver,
    ) -> Result<CampaignReport, CampaignError> {
        let ctx = self
            .run_ctx
            .take()
            .expect("begin() must precede finalize()");
        let RunCtx {
            telemetry_before,
            run_span,
            exhausted,
            ..
        } = ctx;
        let rows_planned = self.scenario.data.n_predictions();
        if exhausted {
            observer.on_event(&CampaignEvent::BudgetExhausted {
                rows_done: self.rows_done,
                rows_planned,
                cost: self.spent,
            });
        }

        // ---- Attacks over the (possibly partial) corpus -------------
        let mut attack_reports = Vec::with_capacity(self.attacks.len());
        if self.rows_done > 0 {
            let rows: Vec<usize> = (0..self.rows_done).collect();
            let data = &self.scenario.data;
            let x_adv = data.x_adv.select_rows(&rows).expect("prefix in range");
            let truth = data.truth.select_rows(&rows).expect("prefix in range");
            let batch = QueryBatch::new(x_adv, self.confidences.clone());
            for spec in &self.attacks {
                let attack_span = run_span.child("campaign.attack");
                attack_span.record_str("attack", spec.name());
                attack_span.record_u64("rows", self.rows_done as u64);
                let result = spec.run(
                    self.scenario.system.model(),
                    &data.adv_indices,
                    &data.target_indices,
                    &self.engine,
                    &batch,
                )?;
                attack_span.finish();
                let mse = metrics::mse_per_feature(&result.estimates, &truth);
                let per_feature_mse = metrics::per_feature_mse(&result.estimates, &truth);
                observer.on_event(&CampaignEvent::AttackDone {
                    attack: spec.name(),
                    rows: self.rows_done,
                    mse,
                    per_feature_mse: per_feature_mse.clone(),
                    degraded_rows: result.degraded_rows.len(),
                });
                attack_reports.push(AttackReport {
                    attack: spec.name(),
                    rows: self.rows_done,
                    degraded_rows: result.degraded_rows.len(),
                    mse,
                    per_feature_mse,
                    target_indices: result.target_indices,
                    estimates: result.estimates,
                });
            }
        }

        // ---- Report -------------------------------------------------
        let outcome = if self.rows_done < rows_planned {
            CampaignOutcome::BudgetExhausted {
                rows_done: self.rows_done,
                rows_planned,
            }
        } else {
            CampaignOutcome::Completed
        };
        observer.on_event(&CampaignEvent::Finished {
            outcome,
            cost: self.spent,
        });
        run_span.record_u64("rows_done", self.rows_done as u64);
        run_span.record_str("outcome", outcome.name());
        run_span.finish();
        // Collect the cross-process observability artifacts after the
        // run span finished, so the client JSONL includes it.
        let (server_trace_jsonl, server_audit) = match self.oracle.as_mut() {
            Some(OracleHandle::Served { client, .. }) => {
                (client.server_trace_jsonl().ok(), client.audit_report().ok())
            }
            _ => (None, None),
        };
        Ok(CampaignReport {
            fingerprint: self.scenario.fingerprint.clone(),
            scenario: self.scenario.description.clone(),
            seed: self.scenario.seed,
            oracle: self.scenario.oracle.describe(),
            outcome,
            rows_done: self.rows_done,
            rows_planned,
            cost: self.spent,
            attacks: attack_reports,
            telemetry: global().snapshot().delta_since(&telemetry_before),
            trace_id: self.trace_id,
            client_trace_jsonl: self.tracer.to_jsonl(),
            server_trace_jsonl,
            session_tag: self.session_tag.clone(),
            server_audit,
        })
    }

    /// Resolves the scenario's oracle on first use: the in-process
    /// deployment, or a spawned prediction server (ephemeral port) plus
    /// a connected client.
    fn ensure_oracle(&mut self) -> Result<(), CampaignError> {
        if self.oracle.is_some() {
            return Ok(());
        }
        let handle = match &self.scenario.oracle {
            OracleSpec::InProcess => OracleHandle::InProcess(InProcessOracle::new(
                self.scenario.system.as_ref().clone(),
                Arc::clone(&self.scenario.defense),
            )),
            OracleSpec::Served(cfg) => {
                let serve_cfg = ServeConfig {
                    bind: "127.0.0.1:0".to_string(),
                    replicas: cfg.replicas,
                    batch_cap: cfg.batch_cap,
                    batch_deadline: cfg.batch_deadline,
                    coalesce: true,
                    cache_capacity: cfg.cache_capacity,
                    cache_seed: self.scenario.seed ^ 0x5C0_7E5,
                    round_cost: cfg.round_cost,
                    audit: true,
                };
                let server = PredictionServer::spawn(
                    Arc::clone(&self.scenario.system),
                    Arc::clone(&self.scenario.defense),
                    serve_cfg,
                )
                .map_err(CampaignError::Spawn)?;
                let mut client = RemoteOracle::connect(server.addr())
                    .map_err(|e| CampaignError::Connect(e.to_string()))?;
                // Declare an audit-ledger session tag so the server's
                // per-client ledger attributes this campaign's traffic
                // by fingerprint rather than by anonymous connection.
                let tag: String = format!(
                    "campaign-{}",
                    self.scenario
                        .fingerprint
                        .chars()
                        .take(16)
                        .collect::<String>()
                );
                client
                    .declare_session(&tag)
                    .map_err(|e| CampaignError::Connect(e.to_string()))?;
                self.session_tag = Some(tag);
                OracleHandle::Served {
                    _server: server,
                    client,
                }
            }
        };
        self.oracle = Some(handle);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventLog, NullObserver};
    use crate::spec::ScenarioSpec;
    use fia_data::PaperDataset;

    fn lr_campaign(seed: u64) -> Campaign {
        let scenario = ScenarioSpec::paper(PaperDataset::DriveDiagnosis)
            .with_scale(0.005)
            .with_partition(crate::PartitionSpec::two_block_random(0.2))
            .with_seed(seed)
            .build();
        Campaign::new(scenario)
            .with_attack(AttackSpec::esa())
            .with_chunk(32)
    }

    #[test]
    fn completed_campaign_is_exact_and_metered() {
        let mut campaign = lr_campaign(11);
        let mut log = EventLog::new();
        let report = campaign.run(&mut log).unwrap();
        assert!(report.outcome.is_complete());
        let n = report.rows_planned as u64;
        assert_eq!(report.cost.rows, n);
        assert_eq!(report.cost.queries, n.div_ceil(32));
        assert_eq!(report.cost.cached_rows, 0);
        // Drive at d_target ≤ c−1: ESA exact through the whole session.
        let esa = report.attack("esa").unwrap();
        assert!(esa.mse < 1e-8, "mse = {}", esa.mse);
        assert_eq!(
            esa.per_feature_mse.len(),
            campaign.scenario().data().d_target()
        );
        assert_eq!(log.chunks_done() as u64, report.cost.queries);
        assert!(!log.saw_exhaustion());
    }

    #[test]
    fn exhausted_campaign_returns_partial_estimates() {
        let mut campaign = lr_campaign(13).with_budget(QueryBudget::rows(50));
        let mut log = EventLog::new();
        let report = campaign.run(&mut log).unwrap();
        assert_eq!(
            report.outcome,
            CampaignOutcome::BudgetExhausted {
                rows_done: 50,
                rows_planned: report.rows_planned
            }
        );
        assert_eq!(report.cost.rows, 50);
        assert_eq!(report.attack("esa").unwrap().estimates.rows(), 50);
        assert!(log.saw_exhaustion());
    }

    #[test]
    fn zero_budget_skips_attacks() {
        let mut campaign = lr_campaign(17).with_budget(QueryBudget::rows(0));
        let report = campaign.run(&mut NullObserver).unwrap();
        assert_eq!(report.rows_done, 0);
        assert!(report.attacks.is_empty());
        assert_eq!(report.cost, QueryCost::default());
        assert!(!report.outcome.is_complete());
    }

    #[test]
    fn resume_completes_and_matches_fresh_run() {
        let mut fresh = lr_campaign(19);
        let full = fresh.run(&mut NullObserver).unwrap();

        let mut stopped = lr_campaign(19).with_budget(QueryBudget::rows(45));
        let partial = stopped.run(&mut NullObserver).unwrap();
        assert!(!partial.outcome.is_complete());
        stopped.set_budget(QueryBudget::unlimited());
        let resumed = stopped.run(&mut NullObserver).unwrap();
        assert!(resumed.outcome.is_complete());
        // Chunk boundaries differ between the runs (45-row remainder),
        // but the release boundary is deterministic per row, so the
        // resumed corpus — and therefore the attack — is bit-identical.
        assert_eq!(
            resumed.attack("esa").unwrap().estimates,
            full.attack("esa").unwrap().estimates
        );
        assert_eq!(resumed.cost.rows, full.cost.rows);
    }

    #[test]
    fn checkpoint_restore_resumes_bit_identically() {
        use crate::checkpoint::{CampaignCheckpoint, CheckpointError};

        let mut fresh = lr_campaign(29);
        let full = fresh.run(&mut NullObserver).unwrap();

        // Drive the stepping API directly (the daemon's loop), stop
        // after two chunks, checkpoint through the blob codec, and
        // resume in a "new process" (a fresh Campaign over a freshly
        // built scenario).
        let mut first = lr_campaign(29);
        first.begin(&mut NullObserver).unwrap();
        assert_eq!(first.step(&mut NullObserver).unwrap(), StepOutcome::Chunk);
        assert_eq!(first.step(&mut NullObserver).unwrap(), StepOutcome::Chunk);
        let blob = first.checkpoint().to_blob();
        drop(first); // the "kill": the run context and oracle die here

        let cp = CampaignCheckpoint::from_blob(&blob).unwrap();
        assert_eq!(cp.rows_done, 64);
        let scenario = ScenarioSpec::paper(PaperDataset::DriveDiagnosis)
            .with_scale(0.005)
            .with_partition(crate::PartitionSpec::two_block_random(0.2))
            .with_seed(29)
            .build();
        let mut resumed = Campaign::restore(scenario, &cp)
            .unwrap()
            .with_attack(AttackSpec::esa());
        assert_eq!(resumed.rows_done(), 64);
        assert_eq!(resumed.chunks_issued(), 2);
        let report = resumed.run(&mut NullObserver).unwrap();
        assert!(report.outcome.is_complete());
        assert_eq!(report.cost, full.cost);
        assert_eq!(
            report.attack("esa").unwrap().estimates,
            full.attack("esa").unwrap().estimates
        );

        // A checkpoint from a different scenario is refused, typed.
        let other = ScenarioSpec::paper(PaperDataset::DriveDiagnosis)
            .with_scale(0.005)
            .with_partition(crate::PartitionSpec::two_block_random(0.2))
            .with_seed(30)
            .build();
        assert!(matches!(
            Campaign::restore(other, &cp),
            Err(CheckpointError::FingerprintMismatch { .. })
        ));
    }

    #[test]
    fn attached_external_oracle_is_queried_and_budgeted() {
        let scenario = ScenarioSpec::paper(PaperDataset::DriveDiagnosis)
            .with_scale(0.005)
            .with_partition(crate::PartitionSpec::two_block_random(0.2))
            .with_seed(31)
            .build();
        let external = InProcessOracle::new(
            scenario.system().as_ref().clone(),
            Arc::clone(scenario.defense()),
        );
        let mut owned = Campaign::new(scenario.clone())
            .with_attack(AttackSpec::esa())
            .with_chunk(32);
        let mut attached = Campaign::new(scenario)
            .with_attack(AttackSpec::esa())
            .with_chunk(32);
        attached.attach_oracle(Box::new(external));
        let a = owned.run(&mut NullObserver).unwrap();
        let b = attached.run(&mut NullObserver).unwrap();
        assert_eq!(
            a.attack("esa").unwrap().estimates,
            b.attack("esa").unwrap().estimates
        );
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn in_process_oracle_applies_defense_at_release() {
        use fia_defense::RoundingDefense;
        let scenario = ScenarioSpec::paper(PaperDataset::DriveDiagnosis)
            .with_scale(0.005)
            .with_partition(crate::PartitionSpec::two_block_random(0.2))
            .with_defense(DefensePipeline::new().then(RoundingDefense::coarse()))
            .with_seed(23)
            .build();
        let mut oracle = InProcessOracle::new(
            scenario.system().as_ref().clone(),
            Arc::clone(scenario.defense()),
        );
        let v = oracle.confidences(&[0, 1, 2]).unwrap();
        for &x in v.as_slice() {
            assert!(
                ((x * 10.0) - (x * 10.0).round()).abs() < 1e-9,
                "score {x} not rounded at release"
            );
        }
        assert_eq!(oracle.query_cost().rows, 3);
    }
}
