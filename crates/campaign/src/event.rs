//! Streaming campaign progress.
//!
//! A campaign is a long-running adversary session (accumulate → attack
//! → evaluate); [`CampaignEvent`]s stream its progress to a
//! [`CampaignObserver`] as it happens — chunk completions with
//! cost-so-far, budget exhaustion, per-attack per-feature error — so a
//! driver can render progress, abort early, or log a trace, without
//! waiting for the final [`CampaignReport`](crate::CampaignReport).

use crate::budget::QueryBudget;
use crate::report::CampaignOutcome;
use fia_core::QueryCost;

/// One progress event of a running campaign.
#[derive(Debug, Clone)]
pub enum CampaignEvent {
    /// The session started (or resumed) accumulating.
    Started {
        /// Scenario fingerprint (see `ScenarioSpec::fingerprint`).
        fingerprint: String,
        /// Rows the full campaign would accumulate.
        rows_planned: usize,
        /// Rows already accumulated (non-zero when resuming).
        rows_done: usize,
        /// The session's budget.
        budget: QueryBudget,
    },
    /// One accumulation chunk was answered by the oracle.
    ChunkDone {
        /// Zero-based chunk index within the whole session.
        chunk: usize,
        /// Rows accumulated so far (across resumes).
        rows_done: usize,
        /// Rows the full campaign would accumulate.
        rows_planned: usize,
        /// Session cost so far, as metered at the oracle boundary.
        cost: QueryCost,
    },
    /// The budget ran out before the planned corpus was complete; the
    /// session continues to the attack stage over the partial corpus.
    BudgetExhausted {
        /// Rows accumulated when the budget ran out.
        rows_done: usize,
        /// Rows the full campaign would have accumulated.
        rows_planned: usize,
        /// Session cost at exhaustion.
        cost: QueryCost,
    },
    /// One attack finished over the accumulated corpus.
    AttackDone {
        /// Attack identifier (`"esa"`, `"pra"`, `"grna"`).
        attack: &'static str,
        /// Rows the attack inferred (the accumulated corpus size).
        rows: usize,
        /// MSE-per-feature (Eqn 10) against the ground truth.
        mse: f64,
        /// Per-target-feature MSE columns, ordered per `target_indices`.
        per_feature_mse: Vec<f64>,
        /// Rows where inference degraded to a fallback.
        degraded_rows: usize,
    },
    /// The session finished; the final report follows.
    Finished {
        /// How the session ended.
        outcome: CampaignOutcome,
        /// Total session cost.
        cost: QueryCost,
    },
}

/// Receives [`CampaignEvent`]s as a campaign runs. Implemented by any
/// `FnMut(&CampaignEvent)` closure; see also [`NullObserver`] and
/// [`EventLog`].
pub trait CampaignObserver {
    /// Called once per event, in order.
    fn on_event(&mut self, event: &CampaignEvent);
}

impl<F: FnMut(&CampaignEvent)> CampaignObserver for F {
    fn on_event(&mut self, event: &CampaignEvent) {
        self(event)
    }
}

/// Discards every event.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl CampaignObserver for NullObserver {
    fn on_event(&mut self, _event: &CampaignEvent) {}
}

/// Collects every event for later inspection (tests, traces).
#[derive(Debug, Default)]
pub struct EventLog {
    /// The events observed so far, in order.
    pub events: Vec<CampaignEvent>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        EventLog::default()
    }

    /// Number of [`CampaignEvent::ChunkDone`] events observed.
    pub fn chunks_done(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, CampaignEvent::ChunkDone { .. }))
            .count()
    }

    /// `true` when a [`CampaignEvent::BudgetExhausted`] was observed.
    pub fn saw_exhaustion(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, CampaignEvent::BudgetExhausted { .. }))
    }
}

impl CampaignObserver for EventLog {
    fn on_event(&mut self, event: &CampaignEvent) {
        self.events.push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closures_and_log_observe_events() {
        let e = CampaignEvent::ChunkDone {
            chunk: 0,
            rows_done: 8,
            rows_planned: 80,
            cost: QueryCost::default(),
        };
        let mut count = 0usize;
        {
            let mut obs = |_: &CampaignEvent| count += 1;
            obs.on_event(&e);
            obs.on_event(&e);
        }
        assert_eq!(count, 2);

        let mut log = EventLog::new();
        log.on_event(&e);
        log.on_event(&CampaignEvent::BudgetExhausted {
            rows_done: 8,
            rows_planned: 80,
            cost: QueryCost::default(),
        });
        assert_eq!(log.chunks_done(), 1);
        assert!(log.saw_exhaustion());
        NullObserver.on_event(&e);
    }
}
