//! Streaming campaign progress.
//!
//! A campaign is a long-running adversary session (accumulate → attack
//! → evaluate); [`CampaignEvent`]s stream its progress to a
//! [`CampaignObserver`] as it happens — chunk completions with
//! cost-so-far, budget exhaustion, per-attack per-feature error — so a
//! driver can render progress, abort early, or log a trace, without
//! waiting for the final [`CampaignReport`](crate::CampaignReport).

use crate::budget::QueryBudget;
use crate::report::CampaignOutcome;
use fia_core::QueryCost;
use fia_telemetry::json::ObjectBuilder;
use std::time::Duration;

/// One progress event of a running campaign.
#[derive(Debug, Clone)]
pub enum CampaignEvent {
    /// The session started (or resumed) accumulating.
    Started {
        /// Scenario fingerprint (see `ScenarioSpec::fingerprint`).
        fingerprint: String,
        /// Rows the full campaign would accumulate.
        rows_planned: usize,
        /// Rows already accumulated (non-zero when resuming).
        rows_done: usize,
        /// The session's budget.
        budget: QueryBudget,
    },
    /// One accumulation chunk was answered by the oracle.
    ChunkDone {
        /// Zero-based chunk index within the whole session.
        chunk: usize,
        /// Rows accumulated so far (across resumes).
        rows_done: usize,
        /// Rows the full campaign would accumulate.
        rows_planned: usize,
        /// Session cost so far, as metered at the oracle boundary.
        cost: QueryCost,
        /// Wall-clock time this chunk's oracle round took (monotonic
        /// clock).
        duration: Duration,
        /// Cumulative wall-clock time since this `run()` started
        /// (monotonic clock; resets on resume).
        elapsed: Duration,
    },
    /// The budget ran out before the planned corpus was complete; the
    /// session continues to the attack stage over the partial corpus.
    BudgetExhausted {
        /// Rows accumulated when the budget ran out.
        rows_done: usize,
        /// Rows the full campaign would have accumulated.
        rows_planned: usize,
        /// Session cost at exhaustion.
        cost: QueryCost,
    },
    /// One attack finished over the accumulated corpus.
    AttackDone {
        /// Attack identifier (`"esa"`, `"pra"`, `"grna"`).
        attack: &'static str,
        /// Rows the attack inferred (the accumulated corpus size).
        rows: usize,
        /// MSE-per-feature (Eqn 10) against the ground truth.
        mse: f64,
        /// Per-target-feature MSE columns, ordered per `target_indices`.
        per_feature_mse: Vec<f64>,
        /// Rows where inference degraded to a fallback.
        degraded_rows: usize,
    },
    /// The session finished; the final report follows.
    Finished {
        /// How the session ended.
        outcome: CampaignOutcome,
        /// Total session cost.
        cost: QueryCost,
    },
}

impl CampaignEvent {
    /// Short stable event-kind identifier (the `"event"` JSON field).
    pub fn kind(&self) -> &'static str {
        match self {
            CampaignEvent::Started { .. } => "started",
            CampaignEvent::ChunkDone { .. } => "chunk-done",
            CampaignEvent::BudgetExhausted { .. } => "budget-exhausted",
            CampaignEvent::AttackDone { .. } => "attack-done",
            CampaignEvent::Finished { .. } => "finished",
        }
    }

    /// One compact JSON object (a JSONL line, sans newline).
    pub fn to_json(&self) -> String {
        fn with_cost(b: ObjectBuilder, cost: &QueryCost) -> ObjectBuilder {
            b.u64("queries", cost.queries)
                .u64("rows", cost.rows)
                .u64("cached_rows", cost.cached_rows)
        }
        let b = ObjectBuilder::new().str("event", self.kind());
        match self {
            CampaignEvent::Started {
                fingerprint,
                rows_planned,
                rows_done,
                budget,
            } => b
                .str("fingerprint", fingerprint)
                .u64("rows_done", *rows_done as u64)
                .u64("rows_planned", *rows_planned as u64)
                .str("budget", &format!("{budget:?}"))
                .build(),
            CampaignEvent::ChunkDone {
                chunk,
                rows_done,
                rows_planned,
                cost,
                duration,
                elapsed,
            } => with_cost(
                b.u64("chunk", *chunk as u64)
                    .u64("rows_done", *rows_done as u64)
                    .u64("rows_planned", *rows_planned as u64)
                    .u64("duration_us", duration.as_micros() as u64)
                    .u64("elapsed_us", elapsed.as_micros() as u64),
                cost,
            )
            .build(),
            CampaignEvent::BudgetExhausted {
                rows_done,
                rows_planned,
                cost,
            } => with_cost(
                b.u64("rows_done", *rows_done as u64)
                    .u64("rows_planned", *rows_planned as u64),
                cost,
            )
            .build(),
            CampaignEvent::AttackDone {
                attack,
                rows,
                mse,
                per_feature_mse,
                degraded_rows,
            } => {
                let per_feature = fia_telemetry::json::array(
                    &per_feature_mse
                        .iter()
                        .map(|v| fia_telemetry::json::number(*v))
                        .collect::<Vec<_>>(),
                );
                b.str("attack", attack)
                    .u64("rows", *rows as u64)
                    .f64("mse", *mse)
                    .raw("per_feature_mse", &per_feature)
                    .u64("degraded_rows", *degraded_rows as u64)
                    .build()
            }
            CampaignEvent::Finished { outcome, cost } => {
                with_cost(b.str("outcome", outcome.name()), cost).build()
            }
        }
    }
}

/// Receives [`CampaignEvent`]s as a campaign runs. Implemented by any
/// `FnMut(&CampaignEvent)` closure; see also [`NullObserver`] and
/// [`EventLog`].
pub trait CampaignObserver {
    /// Called once per event, in order.
    fn on_event(&mut self, event: &CampaignEvent);
}

impl<F: FnMut(&CampaignEvent)> CampaignObserver for F {
    fn on_event(&mut self, event: &CampaignEvent) {
        self(event)
    }
}

/// Discards every event.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl CampaignObserver for NullObserver {
    fn on_event(&mut self, _event: &CampaignEvent) {}
}

/// Collects every event for later inspection (tests, traces).
#[derive(Debug, Default)]
pub struct EventLog {
    /// The events observed so far, in order.
    pub events: Vec<CampaignEvent>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        EventLog::default()
    }

    /// Number of [`CampaignEvent::ChunkDone`] events observed.
    pub fn chunks_done(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, CampaignEvent::ChunkDone { .. }))
            .count()
    }

    /// `true` when a [`CampaignEvent::BudgetExhausted`] was observed.
    pub fn saw_exhaustion(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, CampaignEvent::BudgetExhausted { .. }))
    }

    /// Renders every event as one JSONL line each (trailing newline
    /// included when non-empty) — the campaign's trace-sink format.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }
}

impl CampaignObserver for EventLog {
    fn on_event(&mut self, event: &CampaignEvent) {
        self.events.push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closures_and_log_observe_events() {
        let e = CampaignEvent::ChunkDone {
            chunk: 0,
            rows_done: 8,
            rows_planned: 80,
            cost: QueryCost::default(),
            duration: Duration::from_micros(120),
            elapsed: Duration::from_micros(480),
        };
        let mut count = 0usize;
        {
            let mut obs = |_: &CampaignEvent| count += 1;
            obs.on_event(&e);
            obs.on_event(&e);
        }
        assert_eq!(count, 2);

        let mut log = EventLog::new();
        log.on_event(&e);
        log.on_event(&CampaignEvent::BudgetExhausted {
            rows_done: 8,
            rows_planned: 80,
            cost: QueryCost::default(),
        });
        assert_eq!(log.chunks_done(), 1);
        assert!(log.saw_exhaustion());
        NullObserver.on_event(&e);
    }

    #[test]
    fn events_render_as_jsonl() {
        let mut log = EventLog::new();
        log.on_event(&CampaignEvent::ChunkDone {
            chunk: 2,
            rows_done: 24,
            rows_planned: 80,
            cost: QueryCost {
                queries: 3,
                rows: 24,
                cached_rows: 8,
            },
            duration: Duration::from_micros(1500),
            elapsed: Duration::from_micros(4000),
        });
        log.on_event(&CampaignEvent::AttackDone {
            attack: "esa",
            rows: 24,
            mse: 0.375,
            per_feature_mse: vec![0.5, 0.25],
            degraded_rows: 0,
        });
        log.on_event(&CampaignEvent::Finished {
            outcome: CampaignOutcome::Completed,
            cost: QueryCost {
                queries: 3,
                rows: 24,
                cached_rows: 8,
            },
        });
        let jsonl = log.to_jsonl();
        assert_eq!(jsonl.lines().count(), 3);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert!(lines[0].contains("\"event\":\"chunk-done\""));
        assert!(lines[0].contains("\"duration_us\":1500"));
        assert!(lines[0].contains("\"elapsed_us\":4000"));
        assert!(lines[0].contains("\"cached_rows\":8"));
        assert!(lines[1].contains("\"event\":\"attack-done\""));
        assert!(lines[1].contains("\"per_feature_mse\":[0.5,0.25]"));
        assert!(lines[2].contains("\"event\":\"finished\""));
        assert!(lines[2].contains("\"outcome\":\"completed\""));
        // Every line is a single balanced object.
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'), "{l}");
            assert_eq!(l.matches('{').count(), l.matches('}').count());
        }
        assert_eq!(EventLog::new().to_jsonl(), "");
    }
}
