//! Streaming campaign progress.
//!
//! A campaign is a long-running adversary session (accumulate → attack
//! → evaluate); [`CampaignEvent`]s stream its progress to a
//! [`CampaignObserver`] as it happens — chunk completions with
//! cost-so-far, budget exhaustion, per-attack per-feature error — so a
//! driver can render progress, abort early, or log a trace, without
//! waiting for the final [`CampaignReport`](crate::CampaignReport).

use crate::budget::QueryBudget;
use crate::report::CampaignOutcome;
use fia_core::QueryCost;
use fia_telemetry::json::{self, ObjectBuilder, Value};
use std::time::Duration;

/// One progress event of a running campaign.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignEvent {
    /// The session started (or resumed) accumulating.
    Started {
        /// Scenario fingerprint (see `ScenarioSpec::fingerprint`).
        fingerprint: String,
        /// Rows the full campaign would accumulate.
        rows_planned: usize,
        /// Rows already accumulated (non-zero when resuming).
        rows_done: usize,
        /// The session's budget.
        budget: QueryBudget,
    },
    /// One accumulation chunk was answered by the oracle.
    ChunkDone {
        /// Zero-based chunk index within the whole session.
        chunk: usize,
        /// Rows accumulated so far (across resumes).
        rows_done: usize,
        /// Rows the full campaign would accumulate.
        rows_planned: usize,
        /// Session cost so far, as metered at the oracle boundary.
        cost: QueryCost,
        /// Wall-clock time this chunk's oracle round took (monotonic
        /// clock).
        duration: Duration,
        /// Cumulative wall-clock time since this `run()` started
        /// (monotonic clock; resets on resume).
        elapsed: Duration,
    },
    /// The budget ran out before the planned corpus was complete; the
    /// session continues to the attack stage over the partial corpus.
    BudgetExhausted {
        /// Rows accumulated when the budget ran out.
        rows_done: usize,
        /// Rows the full campaign would have accumulated.
        rows_planned: usize,
        /// Session cost at exhaustion.
        cost: QueryCost,
    },
    /// One attack finished over the accumulated corpus.
    AttackDone {
        /// Attack identifier (`"esa"`, `"pra"`, `"grna"`).
        attack: &'static str,
        /// Rows the attack inferred (the accumulated corpus size).
        rows: usize,
        /// MSE-per-feature (Eqn 10) against the ground truth.
        mse: f64,
        /// Per-target-feature MSE columns, ordered per `target_indices`.
        per_feature_mse: Vec<f64>,
        /// Rows where inference degraded to a fallback.
        degraded_rows: usize,
    },
    /// The session finished; the final report follows.
    Finished {
        /// How the session ended.
        outcome: CampaignOutcome,
        /// Total session cost.
        cost: QueryCost,
    },
}

impl CampaignEvent {
    /// Short stable event-kind identifier (the `"event"` JSON field).
    pub fn kind(&self) -> &'static str {
        match self {
            CampaignEvent::Started { .. } => "started",
            CampaignEvent::ChunkDone { .. } => "chunk-done",
            CampaignEvent::BudgetExhausted { .. } => "budget-exhausted",
            CampaignEvent::AttackDone { .. } => "attack-done",
            CampaignEvent::Finished { .. } => "finished",
        }
    }

    /// One compact JSON object (a JSONL line, sans newline).
    pub fn to_json(&self) -> String {
        fn with_cost(b: ObjectBuilder, cost: &QueryCost) -> ObjectBuilder {
            b.u64("queries", cost.queries)
                .u64("rows", cost.rows)
                .u64("cached_rows", cost.cached_rows)
        }
        let b = ObjectBuilder::new().str("event", self.kind());
        match self {
            CampaignEvent::Started {
                fingerprint,
                rows_planned,
                rows_done,
                budget,
            } => {
                let axis = |v: Option<u64>| v.map_or("null".to_string(), |n| n.to_string());
                let budget_obj = ObjectBuilder::new()
                    .raw("max_queries", &axis(budget.max_queries))
                    .raw("max_rows", &axis(budget.max_rows))
                    .build();
                b.str("fingerprint", fingerprint)
                    .u64("rows_done", *rows_done as u64)
                    .u64("rows_planned", *rows_planned as u64)
                    .raw("budget", &budget_obj)
                    .build()
            }
            CampaignEvent::ChunkDone {
                chunk,
                rows_done,
                rows_planned,
                cost,
                duration,
                elapsed,
            } => with_cost(
                b.u64("chunk", *chunk as u64)
                    .u64("rows_done", *rows_done as u64)
                    .u64("rows_planned", *rows_planned as u64)
                    .u64("duration_us", duration.as_micros() as u64)
                    .u64("elapsed_us", elapsed.as_micros() as u64),
                cost,
            )
            .build(),
            CampaignEvent::BudgetExhausted {
                rows_done,
                rows_planned,
                cost,
            } => with_cost(
                b.u64("rows_done", *rows_done as u64)
                    .u64("rows_planned", *rows_planned as u64),
                cost,
            )
            .build(),
            CampaignEvent::AttackDone {
                attack,
                rows,
                mse,
                per_feature_mse,
                degraded_rows,
            } => {
                let per_feature = fia_telemetry::json::array(
                    &per_feature_mse
                        .iter()
                        .map(|v| fia_telemetry::json::number(*v))
                        .collect::<Vec<_>>(),
                );
                b.str("attack", attack)
                    .u64("rows", *rows as u64)
                    .f64("mse", *mse)
                    .raw("per_feature_mse", &per_feature)
                    .u64("degraded_rows", *degraded_rows as u64)
                    .build()
            }
            CampaignEvent::Finished { outcome, cost } => {
                let mut b = b.str("outcome", outcome.name());
                if let CampaignOutcome::BudgetExhausted {
                    rows_done,
                    rows_planned,
                } = outcome
                {
                    b = b
                        .u64("rows_done", *rows_done as u64)
                        .u64("rows_planned", *rows_planned as u64);
                }
                with_cost(b, cost).build()
            }
        }
    }

    /// Parses one JSON object produced by [`CampaignEvent::to_json`]
    /// back into the event — the daemon's attach/replay path, and what
    /// makes archived `campaign_events.jsonl` artifacts
    /// machine-checkable. Durations round-trip at microsecond
    /// granularity (the serialized resolution).
    pub fn from_json(line: &str) -> Result<CampaignEvent, EventParseError> {
        let v = json::parse(line).map_err(|e| EventParseError(e.to_string()))?;
        let req = |key: &str| {
            v.get(key)
                .ok_or_else(|| EventParseError(format!("missing field {key:?}")))
        };
        let req_u64 = |key: &str| {
            req(key)?
                .as_u64()
                .ok_or_else(|| EventParseError(format!("field {key:?} is not an unsigned integer")))
        };
        let req_usize = |key: &str| req_u64(key).map(|n| n as usize);
        let req_f64 = |key: &str| {
            req(key)?
                .as_f64()
                .ok_or_else(|| EventParseError(format!("field {key:?} is not a number")))
        };
        let cost = || -> Result<QueryCost, EventParseError> {
            Ok(QueryCost {
                queries: req_u64("queries")?,
                rows: req_u64("rows")?,
                cached_rows: req_u64("cached_rows")?,
            })
        };
        let kind = req("event")?
            .as_str()
            .ok_or_else(|| EventParseError("field \"event\" is not a string".to_string()))?;
        match kind {
            "started" => {
                let budget_v = req("budget")?;
                let axis = |key: &str| -> Result<Option<u64>, EventParseError> {
                    match budget_v.get(key) {
                        Some(Value::Null) => Ok(None),
                        Some(x) => x.as_u64().map(Some).ok_or_else(|| {
                            EventParseError(format!("budget axis {key:?} is not an integer"))
                        }),
                        None => Err(EventParseError(format!("budget is missing axis {key:?}"))),
                    }
                };
                Ok(CampaignEvent::Started {
                    fingerprint: req("fingerprint")?
                        .as_str()
                        .ok_or_else(|| {
                            EventParseError("field \"fingerprint\" is not a string".to_string())
                        })?
                        .to_string(),
                    rows_planned: req_usize("rows_planned")?,
                    rows_done: req_usize("rows_done")?,
                    budget: QueryBudget {
                        max_queries: axis("max_queries")?,
                        max_rows: axis("max_rows")?,
                    },
                })
            }
            "chunk-done" => Ok(CampaignEvent::ChunkDone {
                chunk: req_usize("chunk")?,
                rows_done: req_usize("rows_done")?,
                rows_planned: req_usize("rows_planned")?,
                cost: cost()?,
                duration: Duration::from_micros(req_u64("duration_us")?),
                elapsed: Duration::from_micros(req_u64("elapsed_us")?),
            }),
            "budget-exhausted" => Ok(CampaignEvent::BudgetExhausted {
                rows_done: req_usize("rows_done")?,
                rows_planned: req_usize("rows_planned")?,
                cost: cost()?,
            }),
            "attack-done" => {
                let attack = match req("attack")?.as_str() {
                    Some("esa") => "esa",
                    Some("pra") => "pra",
                    Some("grna") => "grna",
                    other => {
                        return Err(EventParseError(format!("unknown attack {other:?}")));
                    }
                };
                let per_feature_mse = req("per_feature_mse")?
                    .as_arr()
                    .ok_or_else(|| {
                        EventParseError("field \"per_feature_mse\" is not an array".to_string())
                    })?
                    .iter()
                    .map(|x| {
                        x.as_f64().ok_or_else(|| {
                            EventParseError("per_feature_mse entry is not a number".to_string())
                        })
                    })
                    .collect::<Result<Vec<f64>, _>>()?;
                Ok(CampaignEvent::AttackDone {
                    attack,
                    rows: req_usize("rows")?,
                    mse: req_f64("mse")?,
                    per_feature_mse,
                    degraded_rows: req_usize("degraded_rows")?,
                })
            }
            "finished" => {
                let outcome = match req("outcome")?.as_str() {
                    Some("completed") => CampaignOutcome::Completed,
                    Some("budget-exhausted") => CampaignOutcome::BudgetExhausted {
                        rows_done: req_usize("rows_done")?,
                        rows_planned: req_usize("rows_planned")?,
                    },
                    other => {
                        return Err(EventParseError(format!("unknown outcome {other:?}")));
                    }
                };
                Ok(CampaignEvent::Finished {
                    outcome,
                    cost: cost()?,
                })
            }
            other => Err(EventParseError(format!("unknown event kind {other:?}"))),
        }
    }
}

/// A typed [`CampaignEvent::from_json`] failure: what was malformed or
/// missing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventParseError(pub String);

impl std::fmt::Display for EventParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid campaign event: {}", self.0)
    }
}

impl std::error::Error for EventParseError {}

/// Receives [`CampaignEvent`]s as a campaign runs. Implemented by any
/// `FnMut(&CampaignEvent)` closure; see also [`NullObserver`] and
/// [`EventLog`].
pub trait CampaignObserver {
    /// Called once per event, in order.
    fn on_event(&mut self, event: &CampaignEvent);
}

impl<F: FnMut(&CampaignEvent)> CampaignObserver for F {
    fn on_event(&mut self, event: &CampaignEvent) {
        self(event)
    }
}

/// Discards every event.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl CampaignObserver for NullObserver {
    fn on_event(&mut self, _event: &CampaignEvent) {}
}

/// Collects every event for later inspection (tests, traces).
#[derive(Debug, Default)]
pub struct EventLog {
    /// The events observed so far, in order.
    pub events: Vec<CampaignEvent>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        EventLog::default()
    }

    /// Number of [`CampaignEvent::ChunkDone`] events observed.
    pub fn chunks_done(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, CampaignEvent::ChunkDone { .. }))
            .count()
    }

    /// `true` when a [`CampaignEvent::BudgetExhausted`] was observed.
    pub fn saw_exhaustion(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, CampaignEvent::BudgetExhausted { .. }))
    }

    /// Renders every event as one JSONL line each (trailing newline
    /// included when non-empty) — the campaign's trace-sink format.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }

    /// Parses a [`EventLog::to_jsonl`] artifact back into a log,
    /// skipping blank lines; the first malformed line fails the whole
    /// parse with its 1-based line number.
    pub fn from_jsonl(jsonl: &str) -> Result<EventLog, EventParseError> {
        let mut events = Vec::new();
        for (i, line) in jsonl.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            events.push(
                CampaignEvent::from_json(line)
                    .map_err(|e| EventParseError(format!("line {}: {}", i + 1, e.0)))?,
            );
        }
        Ok(EventLog { events })
    }
}

impl CampaignObserver for EventLog {
    fn on_event(&mut self, event: &CampaignEvent) {
        self.events.push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closures_and_log_observe_events() {
        let e = CampaignEvent::ChunkDone {
            chunk: 0,
            rows_done: 8,
            rows_planned: 80,
            cost: QueryCost::default(),
            duration: Duration::from_micros(120),
            elapsed: Duration::from_micros(480),
        };
        let mut count = 0usize;
        {
            let mut obs = |_: &CampaignEvent| count += 1;
            obs.on_event(&e);
            obs.on_event(&e);
        }
        assert_eq!(count, 2);

        let mut log = EventLog::new();
        log.on_event(&e);
        log.on_event(&CampaignEvent::BudgetExhausted {
            rows_done: 8,
            rows_planned: 80,
            cost: QueryCost::default(),
        });
        assert_eq!(log.chunks_done(), 1);
        assert!(log.saw_exhaustion());
        NullObserver.on_event(&e);
    }

    #[test]
    fn events_render_as_jsonl() {
        let mut log = EventLog::new();
        log.on_event(&CampaignEvent::ChunkDone {
            chunk: 2,
            rows_done: 24,
            rows_planned: 80,
            cost: QueryCost {
                queries: 3,
                rows: 24,
                cached_rows: 8,
            },
            duration: Duration::from_micros(1500),
            elapsed: Duration::from_micros(4000),
        });
        log.on_event(&CampaignEvent::AttackDone {
            attack: "esa",
            rows: 24,
            mse: 0.375,
            per_feature_mse: vec![0.5, 0.25],
            degraded_rows: 0,
        });
        log.on_event(&CampaignEvent::Finished {
            outcome: CampaignOutcome::Completed,
            cost: QueryCost {
                queries: 3,
                rows: 24,
                cached_rows: 8,
            },
        });
        let jsonl = log.to_jsonl();
        assert_eq!(jsonl.lines().count(), 3);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert!(lines[0].contains("\"event\":\"chunk-done\""));
        assert!(lines[0].contains("\"duration_us\":1500"));
        assert!(lines[0].contains("\"elapsed_us\":4000"));
        assert!(lines[0].contains("\"cached_rows\":8"));
        assert!(lines[1].contains("\"event\":\"attack-done\""));
        assert!(lines[1].contains("\"per_feature_mse\":[0.5,0.25]"));
        assert!(lines[2].contains("\"event\":\"finished\""));
        assert!(lines[2].contains("\"outcome\":\"completed\""));
        // Every line is a single balanced object.
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'), "{l}");
            assert_eq!(l.matches('{').count(), l.matches('}').count());
        }
        assert_eq!(EventLog::new().to_jsonl(), "");
    }

    fn random_event(rng: &mut impl rand::Rng) -> CampaignEvent {
        let cost = QueryCost {
            queries: rng.gen::<u64>() >> 8,
            rows: rng.gen::<u64>() >> 8,
            // Exercise the full u64 range on one axis: the raw-token
            // JSON numbers must not squeeze through an f64.
            cached_rows: rng.gen::<u64>(),
        };
        match rng.gen::<u32>() % 5 {
            0 => CampaignEvent::Started {
                fingerprint: format!("{:016x}", rng.gen::<u64>()),
                rows_planned: rng.gen::<u32>() as usize,
                rows_done: rng.gen::<u32>() as usize,
                budget: QueryBudget {
                    max_queries: rng.gen::<bool>().then(|| rng.gen::<u64>()),
                    max_rows: rng.gen::<bool>().then(|| rng.gen::<u64>()),
                },
            },
            1 => CampaignEvent::ChunkDone {
                chunk: rng.gen::<u32>() as usize,
                rows_done: rng.gen::<u32>() as usize,
                rows_planned: rng.gen::<u32>() as usize,
                cost,
                duration: Duration::from_micros(rng.gen::<u64>() >> 20),
                elapsed: Duration::from_micros(rng.gen::<u64>() >> 20),
            },
            2 => CampaignEvent::BudgetExhausted {
                rows_done: rng.gen::<u32>() as usize,
                rows_planned: rng.gen::<u32>() as usize,
                cost,
            },
            3 => CampaignEvent::AttackDone {
                attack: ["esa", "pra", "grna"][(rng.gen::<u32>() % 3) as usize],
                rows: rng.gen::<u32>() as usize,
                mse: rng.gen::<f64>() * 10.0,
                per_feature_mse: (0..rng.gen::<u32>() % 8)
                    .map(|_| rng.gen::<f64>() * 3.0)
                    .collect(),
                degraded_rows: rng.gen::<u32>() as usize,
            },
            _ => CampaignEvent::Finished {
                outcome: if rng.gen::<bool>() {
                    CampaignOutcome::Completed
                } else {
                    CampaignOutcome::BudgetExhausted {
                        rows_done: rng.gen::<u32>() as usize,
                        rows_planned: rng.gen::<u32>() as usize,
                    }
                },
                cost,
            },
        }
    }

    #[test]
    fn every_event_kind_round_trips_through_json() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xE7E77);
        for i in 0..500 {
            let e = random_event(&mut rng);
            let line = e.to_json();
            let back = CampaignEvent::from_json(&line)
                .unwrap_or_else(|err| panic!("case {i}: {err} for {line}"));
            assert_eq!(back, e, "case {i}: {line}");
        }
    }

    #[test]
    fn event_log_round_trips_as_jsonl() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let log = EventLog {
            events: (0..40).map(|_| random_event(&mut rng)).collect(),
        };
        let back = EventLog::from_jsonl(&log.to_jsonl()).unwrap();
        assert_eq!(back.events, log.events);
        assert!(EventLog::from_jsonl("\n  \n").unwrap().events.is_empty());
    }

    #[test]
    fn from_json_rejects_malformed_events() {
        for bad in [
            "not json",
            "{}",
            "{\"event\":\"no-such-kind\"}",
            "{\"event\":42}",
            "{\"event\":\"started\",\"fingerprint\":\"ab\",\"rows_done\":0,\"rows_planned\":1,\"budget\":{\"max_queries\":null}}",
            "{\"event\":\"started\",\"fingerprint\":\"ab\",\"rows_done\":0,\"rows_planned\":1,\"budget\":{\"max_queries\":null,\"max_rows\":-3}}",
            "{\"event\":\"chunk-done\",\"chunk\":0,\"rows_done\":1,\"rows_planned\":2,\"duration_us\":1,\"elapsed_us\":2,\"queries\":1,\"rows\":1}",
            "{\"event\":\"attack-done\",\"attack\":\"zzz\",\"rows\":1,\"mse\":0.5,\"per_feature_mse\":[],\"degraded_rows\":0}",
            "{\"event\":\"attack-done\",\"attack\":\"esa\",\"rows\":1,\"mse\":0.5,\"per_feature_mse\":[\"x\"],\"degraded_rows\":0}",
            "{\"event\":\"finished\",\"outcome\":\"sideways\",\"queries\":1,\"rows\":1,\"cached_rows\":0}",
        ] {
            let err = CampaignEvent::from_json(bad);
            assert!(err.is_err(), "accepted malformed event {bad}");
        }
        // Line numbers surface in JSONL errors.
        let err = EventLog::from_jsonl("{\"event\":\"finished\",\"outcome\":\"completed\",\"queries\":1,\"rows\":1,\"cached_rows\":0}\nnope\n")
            .unwrap_err();
        assert!(err.0.contains("line 2"), "{err}");
    }
}
