//! The campaign-level telemetry surface, over the wire and in-process:
//! a served session's `MetricsText` scrape covers serve, campaign and
//! kernel instruments; the report's snapshot delta is deterministic for
//! identically-seeded runs; chunk events carry monotone wall-clock
//! timings; the event log renders to JSONL.
//!
//! Campaign/kernel/attack instruments live on the process-global
//! registry, so the tests in this file serialize on one lock — a
//! concurrent test mutating the globals would pollute another's
//! snapshot delta.

use fia_campaign::{
    AttackSpec, Campaign, CampaignEvent, EventLog, NullObserver, OracleSpec, PartitionSpec,
    ScenarioSpec, ServedConfig,
};
use fia_data::PaperDataset;
use std::sync::Mutex;
use std::time::Duration;

static LOCK: Mutex<()> = Mutex::new(());

fn lr_spec(seed: u64) -> ScenarioSpec {
    ScenarioSpec::paper(PaperDataset::DriveDiagnosis)
        .with_scale(0.005)
        .with_partition(PartitionSpec::two_block_random(0.2))
        .with_seed(seed)
}

#[test]
fn served_scrape_covers_serve_campaign_and_kernel_instruments() {
    let _guard = LOCK.lock().unwrap();
    let scenario = lr_spec(53)
        .with_oracle(OracleSpec::Served(ServedConfig {
            replicas: 2,
            cache_capacity: 4096,
            ..ServedConfig::default()
        }))
        .build();
    let mut campaign = Campaign::new(scenario)
        .with_attack(AttackSpec::esa())
        .with_chunk(32);

    let first = campaign.run(&mut NullObserver).unwrap();
    assert_eq!(first.cost.cached_rows, 0);
    let second = campaign.rerun(&mut NullObserver).unwrap();
    assert_eq!(
        second.cost.cached_rows, second.cost.rows,
        "repeat pass should be fully cache-served"
    );

    let text = campaign
        .server_metrics_text()
        .expect("served session scrapes");
    // One exposition covers all three layers: the server's own registry
    // plus the process-global registry (campaign + kernel instruments).
    for name in [
        "fia_serve_requests_total",
        "fia_serve_cache_hit_rows_total",
        "fia_serve_request_duration_us_bucket",
        "fia_campaign_chunks_total",
        "fia_campaign_rows_total",
        "fia_campaign_cached_rows_total",
        "fia_kernel_gemm_calls_total",
        "fia_attack_phase_total",
    ] {
        assert!(
            text.lines().any(|l| l.starts_with(name)),
            "scrape is missing {name}:\n{text}"
        );
    }
    // Well-formed: every non-comment line is `name{labels} value`.
    for line in text
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let value = line.rsplit(' ').next().unwrap();
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf" || value == "NaN",
            "unparseable sample: {line}"
        );
    }

    // The report's delta carries exactly this run's campaign counters.
    let chunks = second
        .telemetry
        .counters()
        .into_iter()
        .find(|(k, _)| k.starts_with("fia_campaign_chunks_total"))
        .map(|(_, v)| v)
        .expect("delta carries the chunk counter");
    assert_eq!(chunks, second.cost.queries);
    campaign.shutdown();
}

#[test]
fn identically_seeded_runs_have_identical_counter_deltas() {
    let _guard = LOCK.lock().unwrap();
    let run = || {
        Campaign::new(lr_spec(29).build())
            .with_attack(AttackSpec::esa())
            .with_chunk(48)
            .run(&mut NullObserver)
            .unwrap()
    };
    let a = run();
    let b = run();
    assert!(!a.telemetry.is_empty());
    let ca = a.telemetry.counters();
    let cb = b.telemetry.counters();
    assert!(
        ca.iter().any(|(k, _)| k.starts_with("fia_kernel_gemm")),
        "kernel counters present: {ca:?}"
    );
    assert_eq!(
        ca, cb,
        "counter deltas of identically-seeded runs must agree"
    );
}

#[test]
fn chunk_timings_are_monotone() {
    let _guard = LOCK.lock().unwrap();
    let mut log = EventLog::new();
    Campaign::new(lr_spec(59).build())
        .with_attack(AttackSpec::esa())
        .with_chunk(32)
        .run(&mut log)
        .unwrap();
    let mut last_elapsed = Duration::ZERO;
    let mut chunks = 0usize;
    for e in &log.events {
        if let CampaignEvent::ChunkDone {
            duration, elapsed, ..
        } = e
        {
            assert!(duration <= elapsed, "chunk outlives the run: {e:?}");
            assert!(*elapsed >= last_elapsed, "elapsed went backwards: {e:?}");
            last_elapsed = *elapsed;
            chunks += 1;
        }
    }
    assert!(chunks > 1, "expected multiple chunks, saw {chunks}");
}

#[test]
fn spans_and_event_log_render_to_jsonl() {
    let _guard = LOCK.lock().unwrap();
    let mut log = EventLog::new();
    let mut campaign = Campaign::new(lr_spec(61).build())
        .with_attack(AttackSpec::esa())
        .with_chunk(64);
    campaign.run(&mut log).unwrap();

    let events = log.to_jsonl();
    assert_eq!(events.lines().count(), log.events.len());
    assert!(events.contains("\"event\":\"started\""));
    assert!(events.contains("\"event\":\"chunk-done\""));
    assert!(events.contains("\"event\":\"attack-done\""));
    assert!(events.contains("\"event\":\"finished\""));

    let trace = campaign.trace_jsonl();
    assert!(trace
        .lines()
        .any(|l| l.contains("\"name\":\"campaign.run\"")));
    assert!(trace
        .lines()
        .any(|l| l.contains("\"name\":\"campaign.chunk\"")));
    assert!(trace
        .lines()
        .any(|l| l.contains("\"name\":\"campaign.attack\"") && l.contains("\"attack\":\"esa\"")));
    // Every chunk/attack span points at the one root.
    let records = campaign.tracer().records();
    let root = records
        .iter()
        .find(|r| r.name == "campaign.run")
        .expect("root span");
    assert!(records
        .iter()
        .filter(|r| r.name != "campaign.run")
        .all(|r| r.parent == Some(root.id)));
}
