//! Budget enforcement: a campaign halts with `BudgetExhausted` after
//! *exactly* the budgeted rows (never over), the oracle adapter hard-
//! stops any driver that tries to overspend, and resuming a
//! checkpointed campaign reproduces the unbudgeted result
//! bit-identically.

use fia_campaign::{
    AttackSpec, BudgetedOracle, Campaign, CampaignOutcome, EventLog, NullObserver, PartitionSpec,
    QueryBudget, ScenarioSpec,
};
use fia_core::{accumulate_batch, PredictionOracle};
use fia_data::PaperDataset;

fn esa_campaign(seed: u64, chunk: usize) -> Campaign {
    let scenario = ScenarioSpec::paper(PaperDataset::DriveDiagnosis)
        .with_scale(0.005)
        .with_partition(PartitionSpec::two_block_random(0.2))
        .with_seed(seed)
        .build();
    Campaign::new(scenario)
        .with_attack(AttackSpec::esa())
        .with_chunk(chunk)
}

/// Property sweep over (budget, chunk): the session stops at exactly
/// the budgeted row count — never over — whatever the chunking, and the
/// partial per-feature results cover exactly those rows.
#[test]
fn row_budget_is_exact_across_chunkings() {
    for &chunk in &[1usize, 7, 16, 64] {
        for &budget in &[1u64, 7, 16, 33, 64, 100] {
            let mut campaign = esa_campaign(3, chunk).with_budget(QueryBudget::rows(budget));
            let mut log = EventLog::new();
            let report = campaign.run(&mut log).unwrap();
            let planned = report.rows_planned as u64;
            let expect = budget.min(planned);
            assert_eq!(
                report.cost.rows, expect,
                "budget {budget} chunk {chunk}: spent {} rows",
                report.cost.rows
            );
            assert!(report.cost.rows <= budget, "overspent at chunk {chunk}");
            if expect < planned {
                assert_eq!(
                    report.outcome,
                    CampaignOutcome::BudgetExhausted {
                        rows_done: expect as usize,
                        rows_planned: planned as usize,
                    },
                    "budget {budget} chunk {chunk}"
                );
                assert!(log.saw_exhaustion());
            } else {
                assert!(report.outcome.is_complete());
            }
            // Partial per-feature results are returned, sized to the
            // budget.
            let esa = report.attack("esa").expect("attack ran");
            assert_eq!(esa.estimates.rows() as u64, expect);
            assert_eq!(
                esa.per_feature_mse.len(),
                campaign.scenario().data().d_target()
            );
        }
    }
}

/// A query-count budget bounds the number of oracle rounds.
#[test]
fn query_budget_bounds_rounds() {
    for &max_queries in &[1u64, 3, 5] {
        let mut campaign = esa_campaign(5, 16).with_budget(QueryBudget::queries(max_queries));
        let report = campaign.run(&mut NullObserver).unwrap();
        assert_eq!(report.cost.queries, max_queries);
        assert_eq!(report.cost.rows, max_queries * 16);
        assert!(!report.outcome.is_complete());
    }
}

/// Both axes together: whichever runs out first stops the session.
#[test]
fn combined_budget_stops_at_tighter_axis() {
    let mut campaign = esa_campaign(7, 16).with_budget(QueryBudget::queries(10).with_rows(40));
    let report = campaign.run(&mut NullObserver).unwrap();
    assert_eq!(report.cost.rows, 40);
    assert!(report.cost.queries <= 10);

    let mut campaign = esa_campaign(7, 16).with_budget(QueryBudget::queries(2).with_rows(1000));
    let report = campaign.run(&mut NullObserver).unwrap();
    assert_eq!(report.cost.queries, 2);
    assert_eq!(report.cost.rows, 32);
}

/// Resuming a checkpointed campaign (budget raised after exhaustion)
/// reproduces the unbudgeted run bit-identically: same corpus, same
/// estimates, same total cost.
#[test]
fn resumed_campaign_reproduces_unbudgeted_run_bit_identically() {
    for &stop_at in &[1u64, 45, 64, 130] {
        let mut fresh = esa_campaign(19, 32);
        let full = fresh.run(&mut NullObserver).unwrap();

        let mut stopped = esa_campaign(19, 32).with_budget(QueryBudget::rows(stop_at));
        let partial = stopped.run(&mut NullObserver).unwrap();
        assert!(!partial.outcome.is_complete());
        assert_eq!(partial.cost.rows, stop_at);

        stopped.set_budget(QueryBudget::unlimited());
        let resumed = stopped.run(&mut NullObserver).unwrap();
        assert!(resumed.outcome.is_complete());
        assert_eq!(resumed.rows_done, full.rows_done);
        assert_eq!(resumed.cost.rows, full.cost.rows);
        // Bit-identical estimates, not approximately equal.
        assert_eq!(
            resumed.attack("esa").unwrap().estimates,
            full.attack("esa").unwrap().estimates,
            "stop_at = {stop_at}"
        );
    }
}

/// A partial ESA corpus is still useful: the budgeted prefix of an
/// exact-recovery scenario stays exact.
#[test]
fn partial_corpus_estimates_match_full_run_prefix() {
    let mut fresh = esa_campaign(23, 32);
    let full = fresh.run(&mut NullObserver).unwrap();
    let mut budgeted = esa_campaign(23, 32).with_budget(QueryBudget::rows(50));
    let partial = budgeted.run(&mut NullObserver).unwrap();
    let partial_est = &partial.attack("esa").unwrap().estimates;
    let full_est = &full.attack("esa").unwrap().estimates;
    assert_eq!(partial_est.rows(), 50);
    for i in 0..50 {
        assert_eq!(partial_est.row(i), full_est.row(i), "row {i}");
    }
}

/// The enforcement lives in the oracle adapter, not in the session's
/// planning: a driver that bypasses the campaign loop and queries the
/// adapter directly is refused the overspending round.
#[test]
fn adapter_hard_stops_rogue_drivers() {
    let scenario = ScenarioSpec::paper(PaperDataset::CreditCard)
        .with_scale(0.008)
        .with_seed(29)
        .build();
    let mut inner = fia_campaign::InProcessOracle::new(
        scenario.system().as_ref().clone(),
        scenario.defense().clone(),
    );
    let mut oracle = BudgetedOracle::new(&mut inner, QueryBudget::rows(10));
    let x_adv = &scenario.data().x_adv;
    let indices: Vec<usize> = (0..x_adv.rows()).collect();
    // `accumulate_batch` is the raw driver every attack uses; asking for
    // the whole prediction set must fail at the boundary…
    let err = accumulate_batch(&mut oracle, x_adv, &indices, 64).unwrap_err();
    assert!(err.to_string().contains("budget exhausted"), "{err}");
    // …and the failed round spent nothing beyond the allowed prefix.
    assert_eq!(oracle.query_cost().rows, 0);
    let ten: Vec<usize> = (0..10).collect();
    let x_ten = x_adv.select_rows(&ten).unwrap();
    let batch = accumulate_batch(&mut oracle, &x_ten, &ten, 5).unwrap();
    assert_eq!(batch.len(), 10);
    assert_eq!(oracle.query_cost().rows, 10);
    assert!(oracle.confidences(&[0]).is_err());
}
