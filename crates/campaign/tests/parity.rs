//! Oracle parity: a campaign over `OracleSpec::Served` — a real
//! spawned `PredictionServer`, queried over TCP — reproduces the
//! in-process campaign's report for every attack family, within 1e-9
//! per estimate (the wire codec ships raw IEEE-754 bits, so the match
//! is in fact bit-exact).

use fia_campaign::{
    AttackSpec, Campaign, CampaignError, ModelSpec, NullObserver, OracleSpec, PartitionSpec,
    ScenarioSpec, ServedConfig,
};
use fia_core::GrnaConfig;
use fia_data::PaperDataset;
use fia_models::{ForestConfig, TreeConfig};

/// Runs the same spec twice — in-process and served — and asserts the
/// reports agree.
fn assert_parity(spec: ScenarioSpec, attack: AttackSpec, served: ServedConfig) {
    let mut local = Campaign::new(spec.clone().with_oracle(OracleSpec::InProcess).build())
        .with_attack(attack.clone())
        .with_chunk(48);
    let local_report = local.run(&mut NullObserver).unwrap();

    let mut remote = Campaign::new(spec.with_oracle(OracleSpec::Served(served)).build())
        .with_attack(attack.clone())
        .with_chunk(48);
    let remote_report = remote.run(&mut NullObserver).unwrap();
    remote.shutdown();

    assert!(local_report.outcome.is_complete());
    assert!(remote_report.outcome.is_complete());
    assert_eq!(local_report.cost.rows, remote_report.cost.rows);
    let name = attack.name();
    let a = &local_report.attack(name).unwrap().estimates;
    let b = &remote_report.attack(name).unwrap().estimates;
    let diff = a.max_abs_diff(b).unwrap();
    assert!(
        diff < 1e-9,
        "{name}: served estimates diverge from in-process by {diff}"
    );
    let mse_diff =
        (local_report.attack(name).unwrap().mse - remote_report.attack(name).unwrap().mse).abs();
    assert!(mse_diff < 1e-9, "{name}: mse diverges by {mse_diff}");
}

#[test]
fn esa_served_matches_in_process() {
    let spec = ScenarioSpec::paper(PaperDataset::DriveDiagnosis)
        .with_scale(0.005)
        .with_partition(PartitionSpec::two_block_random(0.2))
        .with_seed(31);
    assert_parity(
        spec,
        AttackSpec::esa(),
        ServedConfig {
            replicas: 3,
            cache_capacity: 512,
            ..ServedConfig::default()
        },
    );
}

#[test]
fn pra_served_matches_in_process() {
    let spec = ScenarioSpec::paper(PaperDataset::CreditCard)
        .with_scale(0.005)
        .with_model(ModelSpec::DecisionTree(TreeConfig::paper_dt()))
        .with_seed(37);
    assert_parity(
        spec,
        AttackSpec::pra(),
        ServedConfig {
            replicas: 2,
            ..ServedConfig::default()
        },
    );
}

#[test]
fn grna_served_matches_in_process() {
    // Tiny generator: parity needs identical corpora, not a good fit.
    let grna = GrnaConfig {
        hidden: vec![12],
        epochs: 3,
        ..GrnaConfig::fast()
    }
    .with_seed(5);
    let spec = ScenarioSpec::paper(PaperDataset::CreditCard)
        .with_scale(0.005)
        .with_seed(41);
    assert_parity(
        spec,
        AttackSpec::grna(grna),
        ServedConfig {
            replicas: 2,
            cache_capacity: 256,
            ..ServedConfig::default()
        },
    );
}

#[test]
fn incompatible_attack_is_a_typed_error() {
    let scenario = ScenarioSpec::paper(PaperDataset::CreditCard)
        .with_scale(0.005)
        .with_model(ModelSpec::RandomForest(ForestConfig {
            n_trees: 4,
            ..ForestConfig::default()
        }))
        .with_seed(43)
        .build();
    let mut campaign = Campaign::new(scenario).with_attack(AttackSpec::esa());
    match campaign.run(&mut NullObserver) {
        Err(CampaignError::Incompatible { attack, model }) => {
            assert_eq!(attack, "esa");
            assert_eq!(model, "rf");
        }
        other => panic!("expected Incompatible, got {other:?}"),
    }
    // The pairing is determined by the specs alone, so the failure must
    // cost the session nothing: no rows accumulated, no queries spent.
    assert_eq!(campaign.rows_done(), 0);
    assert_eq!(campaign.spent(), fia_core::QueryCost::default());
}

/// A repeat campaign against a cache-enabled served scenario is
/// answered from the released-score cache — visible in the report's
/// `QueryCost` — and re-releases identical bytes.
#[test]
fn served_rerun_is_cache_served_and_identical() {
    let scenario = ScenarioSpec::paper(PaperDataset::DriveDiagnosis)
        .with_scale(0.005)
        .with_partition(PartitionSpec::two_block_random(0.2))
        .with_oracle(OracleSpec::Served(ServedConfig {
            replicas: 2,
            cache_capacity: 4096,
            ..ServedConfig::default()
        }))
        .with_seed(47)
        .build();
    let mut campaign = Campaign::new(scenario)
        .with_attack(AttackSpec::esa())
        .with_chunk(32);
    let first = campaign.run(&mut NullObserver).unwrap();
    assert_eq!(first.cost.cached_rows, 0);
    let second = campaign.rerun(&mut NullObserver).unwrap();
    assert_eq!(second.cost.rows, first.cost.rows);
    assert_eq!(
        second.cost.cached_rows, second.cost.rows,
        "repeat pass should be fully cache-served"
    );
    assert_eq!(
        first.attack("esa").unwrap().estimates,
        second.attack("esa").unwrap().estimates
    );
    assert!(campaign.server_metrics().is_some());
    campaign.shutdown();
    assert!(campaign.server_metrics().is_none());
}
