//! Cross-process observability, end to end: a served campaign's merged
//! trace resolves every server-side `serve.request` span to the
//! client-side `campaign.chunk` that caused it, and the server's
//! per-client audit ledger agrees with the client's own `QueryCost`
//! meter — queries, rows, and cache-released rows — by construction.

use fia_campaign::{
    AttackSpec, Campaign, NullObserver, OracleSpec, PartitionSpec, ScenarioSpec, ServedConfig,
};
use fia_data::PaperDataset;
use fia_serve::SERVER_SPAN_ID_BASE;

fn served_campaign(seed: u64, cache: usize) -> Campaign {
    let scenario = ScenarioSpec::paper(PaperDataset::DriveDiagnosis)
        .with_scale(0.005)
        .with_partition(PartitionSpec::two_block_random(0.2))
        .with_oracle(OracleSpec::Served(ServedConfig {
            replicas: 2,
            cache_capacity: cache,
            ..ServedConfig::default()
        }))
        .with_seed(seed)
        .build();
    Campaign::new(scenario)
        .with_attack(AttackSpec::esa())
        .with_chunk(32)
}

/// Pulls `"key":N` out of a hand-rolled JSONL line.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)? + needle.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn has_name(line: &str, name: &str) -> bool {
    line.contains(&format!("\"name\":\"{name}\""))
}

#[test]
fn merged_trace_resolves_server_requests_to_client_chunks() {
    let mut campaign = served_campaign(67, 512);
    let report = campaign.run(&mut NullObserver).unwrap();
    assert!(report.outcome.is_complete());
    assert!(report.server_trace_jsonl.is_some(), "served run exports");

    let merged = report.merged_trace_jsonl();
    let lines: Vec<&str> = merged.lines().collect();

    // The two id spaces are disjoint: client ids below the server base.
    let client_ids: std::collections::HashSet<u64> = lines
        .iter()
        .filter_map(|l| field_u64(l, "id"))
        .filter(|&id| id < SERVER_SPAN_ID_BASE)
        .collect();
    let chunk_ids: std::collections::HashSet<u64> = lines
        .iter()
        .filter(|l| has_name(l, "campaign.chunk"))
        .filter_map(|l| field_u64(l, "id"))
        .collect();
    assert!(!chunk_ids.is_empty(), "client chunks present");
    assert!(chunk_ids.iter().all(|id| client_ids.contains(id)));

    // Every server `serve.request` span crosses the process boundary:
    // its parent is a client-side chunk span, and it carries the
    // campaign's deterministic trace id.
    let requests: Vec<&&str> = lines
        .iter()
        .filter(|l| has_name(l, "serve.request"))
        .collect();
    assert!(!requests.is_empty(), "server request spans present");
    for req in &requests {
        let id = field_u64(req, "id").unwrap();
        assert!(id >= SERVER_SPAN_ID_BASE, "server span in server id space");
        let parent = field_u64(req, "parent").expect("request has a parent");
        assert!(
            chunk_ids.contains(&parent),
            "serve.request parent {parent} is not a campaign.chunk: {req}"
        );
        assert_eq!(field_u64(req, "trace_id"), Some(report.trace_id));
    }

    // Inside the server the request fans out: dispatch children under
    // requests, and batcher rounds linked to a dispatch span.
    let request_ids: std::collections::HashSet<u64> =
        requests.iter().filter_map(|l| field_u64(l, "id")).collect();
    let dispatch_ids: std::collections::HashSet<u64> = lines
        .iter()
        .filter(|l| has_name(l, "serve.dispatch"))
        .filter_map(|l| field_u64(l, "id"))
        .collect();
    assert!(!dispatch_ids.is_empty(), "dispatch spans present");
    for l in lines.iter().filter(|l| has_name(l, "serve.dispatch")) {
        let parent = field_u64(l, "parent").expect("dispatch has a parent");
        assert!(request_ids.contains(&parent), "dispatch under a request");
    }
    let rounds: Vec<&&str> = lines
        .iter()
        .filter(|l| has_name(l, "serve.round"))
        .collect();
    assert!(!rounds.is_empty(), "round spans present");
    for l in &rounds {
        let parent = field_u64(l, "parent").expect("round has a parent");
        assert!(
            dispatch_ids.contains(&parent),
            "serve.round links to a dispatch span: {l}"
        );
    }
    campaign.shutdown();
}

#[test]
fn server_ledger_cost_matches_client_meter() {
    let mut campaign = served_campaign(71, 4096);
    let report = campaign.run(&mut NullObserver).unwrap();
    let tag = report
        .session_tag
        .clone()
        .expect("served run declares a tag");
    assert!(tag.starts_with("campaign-"), "tag is {tag}");

    let audit = report.server_audit.as_ref().expect("served run audits");
    assert!(audit.n_samples > 0);
    let entry = audit.client(&tag).expect("ledger keyed by session tag");
    assert_eq!(
        entry.cost(),
        report.cost,
        "serving-side ledger must equal the client's spent meter"
    );
    assert_eq!(entry.distinct_rows, report.rows_done as u64);
    assert_eq!(entry.repeat_rows, 0);
    assert_eq!(entry.feature_queries, 0);
    // A full sweep of the aligned sample space is exactly what the
    // ledger exists to flag.
    assert!(entry.flags.contains(&"high-coverage".to_string()));

    // A cache-served repeat pass keeps the two meters in lockstep,
    // including the cached-row axis, and turns the traffic repeat-heavy.
    let second = campaign.rerun(&mut NullObserver).unwrap();
    assert_eq!(second.cost.cached_rows, second.cost.rows);
    let audit2 = second.server_audit.as_ref().unwrap();
    let entry2 = audit2.client(&tag).unwrap();
    let mut combined = report.cost;
    combined.queries += second.cost.queries;
    combined.rows += second.cost.rows;
    combined.cached_rows += second.cost.cached_rows;
    assert_eq!(
        entry2.cost(),
        combined,
        "ledger accumulates across reruns of one session"
    );
    assert_eq!(entry2.repeat_rows, second.cost.rows);
    assert!(entry2.flags.contains(&"repeat-heavy".to_string()));
    campaign.shutdown();
}

#[test]
fn in_process_sessions_have_client_trace_but_no_server_artifacts() {
    let scenario = ScenarioSpec::paper(PaperDataset::DriveDiagnosis)
        .with_scale(0.005)
        .with_partition(PartitionSpec::two_block_random(0.2))
        .with_seed(73)
        .build();
    let mut campaign = Campaign::new(scenario)
        .with_attack(AttackSpec::esa())
        .with_chunk(64);
    let report = campaign.run(&mut NullObserver).unwrap();
    assert!(report.server_trace_jsonl.is_none());
    assert!(report.server_audit.is_none());
    assert!(report.session_tag.is_none());
    assert_eq!(report.merged_trace_jsonl(), report.client_trace_jsonl);
    assert!(report.client_trace_jsonl.contains("campaign.run"));
    assert_ne!(report.trace_id, 0);
    // Same scenario, same seed → same trace id; different seed → different.
    assert_eq!(report.trace_id, campaign.trace_id());
}
