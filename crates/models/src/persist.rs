//! Save/load for every model family, built on [`crate::bytesio`].
//!
//! A trained vertical FL model is, per the threat model, *released to the
//! parties* — so shipping it around as bytes is a first-class operation.
//! Formats are versioned; decoding validates structural invariants so a
//! corrupt or truncated buffer never produces a silently broken model.

use crate::bytesio::{DecodeError, Reader, Writer};
use crate::forest::RandomForest;
use crate::logistic::LogisticRegression;
use crate::traits::PredictProba;
use crate::tree::{DecisionTree, TreeNode};

const LR_MAGIC: [u8; 4] = *b"FILR";
const DT_MAGIC: [u8; 4] = *b"FIDT";
const RF_MAGIC: [u8; 4] = *b"FIRF";
const VERSION: u8 = 1;

impl LogisticRegression {
    /// Serializes the model (weights, bias, class count).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_header(LR_MAGIC, VERSION);
        w.usize(self.n_classes());
        w.matrix(self.weights());
        w.f64_slice(self.bias());
        w.finish()
    }

    /// Deserializes a model written by [`LogisticRegression::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let (mut r, version) = Reader::with_header(bytes, LR_MAGIC)?;
        if version != VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        let n_classes = r.usize()?;
        let weights = r.matrix()?;
        let bias = r.f64_vec()?;
        if bias.len() != weights.cols() {
            return Err(DecodeError::Corrupt(format!(
                "bias length {} vs {} weight columns",
                bias.len(),
                weights.cols()
            )));
        }
        if n_classes < 2 || (weights.cols() != 1 && weights.cols() != n_classes) {
            return Err(DecodeError::Corrupt(format!(
                "inconsistent class count {n_classes} for {} weight columns",
                weights.cols()
            )));
        }
        Ok(LogisticRegression::from_parameters(
            weights, bias, n_classes,
        ))
    }
}

impl DecisionTree {
    /// Serializes the full binary node array.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_header(DT_MAGIC, VERSION);
        w.usize(self.n_features());
        w.usize(self.n_classes());
        w.usize(self.nodes().len());
        for node in self.nodes() {
            match node {
                TreeNode::Absent => w.u8(0),
                TreeNode::Leaf { label } => {
                    w.u8(1);
                    w.usize(*label);
                }
                TreeNode::Internal { feature, threshold } => {
                    w.u8(2);
                    w.usize(*feature);
                    w.f64(*threshold);
                }
            }
        }
        w.finish()
    }

    /// Deserializes a tree written by [`DecisionTree::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let (mut r, version) = Reader::with_header(bytes, DT_MAGIC)?;
        if version != VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        let n_features = r.usize()?;
        let n_classes = r.usize()?;
        let len = r.usize()?;
        if !(len + 1).is_power_of_two() || len == 0 {
            return Err(DecodeError::Corrupt(format!(
                "node array length {len} is not 2^k − 1"
            )));
        }
        let mut nodes = Vec::with_capacity(len);
        for _ in 0..len {
            nodes.push(match r.u8()? {
                0 => TreeNode::Absent,
                1 => {
                    let label = r.usize()?;
                    if label >= n_classes {
                        return Err(DecodeError::Corrupt(format!(
                            "leaf label {label} out of range (c = {n_classes})"
                        )));
                    }
                    TreeNode::Leaf { label }
                }
                2 => {
                    let feature = r.usize()?;
                    if feature >= n_features {
                        return Err(DecodeError::Corrupt(format!(
                            "feature {feature} out of range (d = {n_features})"
                        )));
                    }
                    let threshold = r.f64()?;
                    TreeNode::Internal { feature, threshold }
                }
                other => {
                    return Err(DecodeError::Corrupt(format!("bad node tag {other}")));
                }
            });
        }
        if matches!(nodes[0], TreeNode::Absent) {
            return Err(DecodeError::Corrupt("root node absent".into()));
        }
        Ok(DecisionTree::from_nodes(nodes, n_features, n_classes))
    }
}

impl RandomForest {
    /// Serializes the forest as a sequence of tree payloads.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_header(RF_MAGIC, VERSION);
        w.usize(self.n_features());
        w.usize(self.n_classes());
        w.usize(self.n_trees());
        for tree in self.trees() {
            let payload = tree.to_bytes();
            w.usize(payload.len());
            for b in payload {
                w.u8(b);
            }
        }
        w.finish()
    }

    /// Deserializes a forest written by [`RandomForest::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let (mut r, version) = Reader::with_header(bytes, RF_MAGIC)?;
        if version != VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        let n_features = r.usize()?;
        let n_classes = r.usize()?;
        let n_trees = r.usize()?;
        if n_trees == 0 {
            return Err(DecodeError::Corrupt("forest with zero trees".into()));
        }
        let mut trees = Vec::with_capacity(n_trees);
        for _ in 0..n_trees {
            let len = r.usize()?;
            let mut payload = Vec::with_capacity(len);
            for _ in 0..len {
                payload.push(r.u8()?);
            }
            let tree = DecisionTree::from_bytes(&payload)?;
            if tree.n_features() != n_features || tree.n_classes() != n_classes {
                return Err(DecodeError::Corrupt(
                    "tree shape disagrees with forest header".into(),
                ));
            }
            trees.push(tree);
        }
        Ok(RandomForest::from_trees(trees, n_features, n_classes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::ForestConfig;
    use crate::logistic::LrConfig;
    use crate::tree::TreeConfig;
    use fia_data::{make_classification, normalize_dataset, SynthConfig};
    use fia_linalg::Matrix;
    use rand::{rngs::StdRng, SeedableRng};

    fn toy_dataset(seed: u64) -> fia_data::Dataset {
        let cfg = SynthConfig {
            n_samples: 200,
            n_features: 6,
            n_informative: 4,
            n_redundant: 1,
            n_classes: 3,
            class_sep: 1.5,
            redundant_noise: 0.3,
            flip_y: 0.0,
            shuffle_features: false,
            seed,
        };
        normalize_dataset(&make_classification(&cfg)).0
    }

    #[test]
    fn lr_roundtrip_preserves_predictions() {
        let ds = toy_dataset(1);
        let model = LogisticRegression::fit(
            &ds,
            &LrConfig {
                epochs: 5,
                ..Default::default()
            },
        );
        let restored = LogisticRegression::from_bytes(&model.to_bytes()).unwrap();
        let a = model.predict_proba(&ds.features);
        let b = restored.predict_proba(&ds.features);
        assert!(a.max_abs_diff(&b).unwrap() < 1e-15);
    }

    #[test]
    fn tree_roundtrip_preserves_paths() {
        let ds = toy_dataset(2);
        let mut rng = StdRng::seed_from_u64(2);
        let tree = DecisionTree::fit(&ds, &TreeConfig::paper_dt(), &mut rng);
        let restored = DecisionTree::from_bytes(&tree.to_bytes()).unwrap();
        for i in 0..20 {
            assert_eq!(
                tree.decision_path(ds.sample(i)),
                restored.decision_path(ds.sample(i))
            );
        }
    }

    #[test]
    fn forest_roundtrip_preserves_votes() {
        let ds = toy_dataset(3);
        let forest = RandomForest::fit(
            &ds,
            &ForestConfig {
                n_trees: 7,
                seed: 3,
                ..ForestConfig::default()
            },
        );
        let restored = RandomForest::from_bytes(&forest.to_bytes()).unwrap();
        let a = forest.predict_proba(&ds.features);
        let b = restored.predict_proba(&ds.features);
        assert_eq!(a, b);
    }

    #[test]
    fn wrong_magic_rejected() {
        let ds = toy_dataset(4);
        let model = LogisticRegression::fit(
            &ds,
            &LrConfig {
                epochs: 2,
                ..Default::default()
            },
        );
        let bytes = model.to_bytes();
        assert!(matches!(
            DecisionTree::from_bytes(&bytes),
            Err(DecodeError::BadMagic { .. })
        ));
    }

    #[test]
    fn truncated_forest_rejected() {
        let ds = toy_dataset(5);
        let forest = RandomForest::fit(
            &ds,
            &ForestConfig {
                n_trees: 3,
                seed: 5,
                ..ForestConfig::default()
            },
        );
        let mut bytes = forest.to_bytes();
        bytes.truncate(bytes.len() / 2);
        assert!(RandomForest::from_bytes(&bytes).is_err());
    }

    #[test]
    fn corrupt_label_rejected() {
        // Hand-craft a tree with an out-of-range label.
        let tree = DecisionTree::from_nodes(
            vec![
                TreeNode::Internal {
                    feature: 0,
                    threshold: 0.5,
                },
                TreeNode::Leaf { label: 0 },
                TreeNode::Leaf { label: 1 },
            ],
            1,
            2,
        );
        let mut bytes = tree.to_bytes();
        // The last usize in the stream is the final leaf's label; bump it.
        let n = bytes.len();
        bytes[n - 8] = 9;
        assert!(matches!(
            DecisionTree::from_bytes(&bytes),
            Err(DecodeError::Corrupt(_))
        ));
    }

    #[test]
    fn lr_binary_roundtrip() {
        let w = Matrix::from_rows(&[vec![0.5], vec![-1.0]]).unwrap();
        let model = LogisticRegression::from_parameters(w, vec![0.25], 2);
        let restored = LogisticRegression::from_bytes(&model.to_bytes()).unwrap();
        assert!(restored.is_binary());
        assert_eq!(restored.bias(), &[0.25]);
    }
}
