//! Random forest: bagged CART trees with per-split feature subsampling.
//!
//! Prediction output follows Section II-A: "each element v_k of class k is
//! the fraction of trees that predict k" — majority voting with the vote
//! shares exposed as confidence scores.

use crate::traits::PredictProba;
use crate::tree::{DecisionTree, TreeConfig};
use fia_data::Dataset;
use fia_linalg::Matrix;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Configuration for [`RandomForest::fit`].
#[derive(Debug, Clone)]
pub struct ForestConfig {
    /// Number of trees `W` (paper default 100).
    pub n_trees: usize,
    /// Per-tree configuration (paper: depth 3).
    pub tree: TreeConfig,
    /// Bootstrap sample size as a fraction of `n` (1.0 = classic bagging).
    pub bootstrap_fraction: f64,
    /// RNG seed.
    pub seed: u64,
    /// Number of worker threads for parallel tree fitting (`1` = serial).
    pub n_threads: usize,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 100,
            tree: TreeConfig::paper_rf_member(),
            bootstrap_fraction: 1.0,
            seed: 0,
            n_threads: 4,
        }
    }
}

impl ForestConfig {
    /// The paper's forest: 100 trees of depth 3.
    pub fn paper_rf() -> Self {
        ForestConfig::default()
    }

    /// A smaller forest for fast experiment profiles.
    pub fn fast() -> Self {
        ForestConfig {
            n_trees: 30,
            ..ForestConfig::default()
        }
    }
}

/// A trained random forest.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_features: usize,
    n_classes: usize,
}

impl RandomForest {
    /// Fits `config.n_trees` trees on bootstrap resamples, subsampling
    /// `√d` features per split. Trees are trained in parallel with scoped
    /// threads; the result is deterministic for a fixed seed regardless of
    /// thread count (each tree derives its own RNG from `seed` and its
    /// index).
    pub fn fit(train: &Dataset, config: &ForestConfig) -> Self {
        assert!(config.n_trees > 0, "need at least one tree");
        let d = train.n_features();
        let mtry = (d as f64).sqrt().ceil() as usize;
        let tree_cfg = TreeConfig {
            max_features: Some(mtry.max(1)),
            ..config.tree.clone()
        };
        let n_boot = ((train.n_samples() as f64) * config.bootstrap_fraction).round() as usize;
        let n_boot = n_boot.max(1);

        let fit_one = |t: usize| -> DecisionTree {
            let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(t as u64 * 0x9e37));
            let rows: Vec<usize> = (0..n_boot)
                .map(|_| rng.gen_range(0..train.n_samples()))
                .collect();
            let sample = train.subset(&rows);
            DecisionTree::fit(&sample, &tree_cfg, &mut rng)
        };

        let trees: Vec<DecisionTree> = if config.n_threads <= 1 || config.n_trees == 1 {
            (0..config.n_trees).map(fit_one).collect()
        } else {
            let threads = config.n_threads.min(config.n_trees);
            let mut slots: Vec<Option<DecisionTree>> = vec![None; config.n_trees];
            std::thread::scope(|scope| {
                for (w, chunk) in slots
                    .chunks_mut(config.n_trees.div_ceil(threads))
                    .enumerate()
                {
                    let fit_one = &fit_one;
                    let base = w * config.n_trees.div_ceil(threads);
                    scope.spawn(move || {
                        for (off, slot) in chunk.iter_mut().enumerate() {
                            *slot = Some(fit_one(base + off));
                        }
                    });
                }
            });
            slots.into_iter().map(|s| s.expect("tree fitted")).collect()
        };

        RandomForest {
            trees,
            n_features: d,
            n_classes: train.n_classes,
        }
    }

    /// Builds a forest from pre-trained trees (deserialization,
    /// ensembling experiments).
    ///
    /// # Panics
    /// Panics on an empty tree list.
    pub fn from_trees(trees: Vec<DecisionTree>, n_features: usize, n_classes: usize) -> Self {
        assert!(!trees.is_empty(), "forest needs at least one tree");
        RandomForest {
            trees,
            n_features,
            n_classes,
        }
    }

    /// The member trees (the GRNA-on-RF CBR metric walks them directly).
    pub fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// Number of trees `W`.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

impl PredictProba for RandomForest {
    fn predict_proba(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(x.rows(), self.n_classes);
        let w = self.trees.len() as f64;
        for i in 0..x.rows() {
            let row = x.row(i);
            for tree in &self.trees {
                out[(i, tree.predict_one(row))] += 1.0;
            }
            for j in 0..self.n_classes {
                out[(i, j)] /= w;
            }
        }
        out
    }

    fn n_features(&self) -> usize {
        self.n_features
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::accuracy;
    use fia_data::{make_classification, normalize_dataset, SynthConfig};

    fn toy_dataset(c: usize, seed: u64) -> Dataset {
        let cfg = SynthConfig {
            n_samples: 400,
            n_features: 9,
            n_informative: 6,
            n_redundant: 2,
            n_classes: c,
            class_sep: 2.0,
            redundant_noise: 0.2,
            flip_y: 0.0,
            shuffle_features: false,
            seed,
        };
        normalize_dataset(&make_classification(&cfg)).0
    }

    #[test]
    fn forest_beats_single_tree_or_matches() {
        let ds = toy_dataset(3, 1);
        let forest = RandomForest::fit(
            &ds,
            &ForestConfig {
                n_trees: 25,
                seed: 3,
                ..ForestConfig::default()
            },
        );
        let acc = accuracy(&forest, &ds.features, &ds.labels);
        assert!(acc > 0.65, "forest accuracy {acc}");
    }

    #[test]
    fn confidences_are_vote_fractions() {
        let ds = toy_dataset(2, 2);
        let forest = RandomForest::fit(
            &ds,
            &ForestConfig {
                n_trees: 10,
                seed: 1,
                ..ForestConfig::default()
            },
        );
        let p = forest.predict_proba(&ds.features.select_rows(&[0, 1]).unwrap());
        for i in 0..2 {
            let row = p.row(i);
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            // Every entry is k/10 for integer k.
            for &v in row {
                let k = v * 10.0;
                assert!((k - k.round()).abs() < 1e-9, "vote fraction {v}");
            }
        }
    }

    #[test]
    fn deterministic_under_seed_and_thread_count() {
        let ds = toy_dataset(2, 3);
        let base = ForestConfig {
            n_trees: 8,
            seed: 42,
            n_threads: 1,
            ..ForestConfig::default()
        };
        let serial = RandomForest::fit(&ds, &base);
        let parallel = RandomForest::fit(
            &ds,
            &ForestConfig {
                n_threads: 4,
                ..base
            },
        );
        let x = ds
            .features
            .select_rows(&(0..50).collect::<Vec<_>>())
            .unwrap();
        assert_eq!(
            serial.predict_proba(&x),
            parallel.predict_proba(&x),
            "thread count changed forest output"
        );
    }

    #[test]
    fn trees_have_paper_depth() {
        let ds = toy_dataset(2, 4);
        let forest = RandomForest::fit(
            &ds,
            &ForestConfig {
                n_trees: 5,
                seed: 7,
                ..ForestConfig::paper_rf()
            },
        );
        for tree in forest.trees() {
            assert_eq!(tree.max_depth(), 3);
        }
        assert_eq!(forest.n_trees(), 5);
    }
}
