#![warn(missing_docs)]

//! # fia-models — the model families the paper attacks
//!
//! Implements, from scratch on top of [`fia_tensor`] and [`fia_linalg`]:
//!
//! * [`LogisticRegression`] — binary (sigmoid) and multi-class
//!   (multinomial softmax over `c` linear models), the ESA target.
//! * [`Mlp`] — feed-forward neural network with the paper's topology
//!   (three hidden layers 600/300/100), optional LayerNorm and dropout.
//! * [`DecisionTree`] — CART with Gini impurity, stored as a *full binary
//!   array* (children of node `i` at `2i+1`/`2i+2`) so the path
//!   restriction attack's Algorithm 1 maps one-to-one onto the storage.
//! * [`RandomForest`] — bagged trees with per-split feature subsampling;
//!   prediction confidence = fraction of trees voting each class.
//! * [`distill_forest`] — trains a differentiable MLP surrogate of a
//!   random forest on uniformly sampled dummy inputs (Section V-B), the
//!   bridge that lets GRNA attack non-differentiable forests.
//!
//! The two traits every attack consumes:
//!
//! * [`PredictProba`] — black-box confidence-score prediction.
//! * [`DifferentiableModel`] — builds the model's *frozen* forward pass on
//!   an autograd tape so the GRN generator's loss can backpropagate
//!   through it.

pub mod bytesio;
mod distill;
mod forest;
mod logistic;
mod mlp;
mod persist;
mod traits;
mod tree;

pub use bytesio::DecodeError;
pub use distill::{distill_forest, distill_forest_with_pool, distillation_fidelity, DistillConfig};
pub use forest::{ForestConfig, RandomForest};
pub use logistic::{LogisticRegression, LrConfig};
pub use mlp::{Activation, Mlp, MlpConfig};
pub use traits::{accuracy, DifferentiableModel, PredictProba};
pub use tree::{DecisionTree, TreeConfig, TreeNode};
