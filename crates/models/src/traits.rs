//! Model traits shared by the attack suite.

use fia_linalg::vecops::argmax;
use fia_linalg::Matrix;
use fia_tensor::{Tape, VarId};

/// Black-box probabilistic classifier: maps a batch of samples to a
/// confidence-score matrix (`n × c`, rows sum to 1).
///
/// This is exactly the interface the vertical FL prediction protocol
/// exposes to the active party — a vector `v = (v₁, …, v_c)` per sample.
pub trait PredictProba {
    /// Confidence scores for each row of `x`.
    fn predict_proba(&self, x: &Matrix) -> Matrix;

    /// Number of input features `d`.
    fn n_features(&self) -> usize;

    /// Number of classes `c`.
    fn n_classes(&self) -> usize;

    /// Hard labels via arg-max over confidence scores.
    fn predict_labels(&self, x: &Matrix) -> Vec<usize> {
        let p = self.predict_proba(x);
        (0..p.rows()).map(|i| argmax(p.row(i))).collect()
    }
}

/// A model whose forward pass can be replayed *frozen* on an autograd
/// tape: weights enter as constant inputs, so gradients flow through the
/// model to its input but no parameter gradient is collected. This is the
/// requirement Algorithm 2 places on the vertical FL model: "the loss is
/// back-propagated to the generator" through `f(·; θ)` with `θ` fixed.
pub trait DifferentiableModel: PredictProba {
    /// Builds the forward pass on `tape` from the input variable `x`
    /// (`batch × d`), returning confidence scores (`batch × c`).
    fn forward_frozen(&self, tape: &mut Tape, x: VarId) -> VarId;
}

/// Fraction of samples whose arg-max prediction matches `labels`.
pub fn accuracy<M: PredictProba + ?Sized>(model: &M, x: &Matrix, labels: &[usize]) -> f64 {
    assert_eq!(x.rows(), labels.len(), "sample/label count mismatch");
    if labels.is_empty() {
        return 0.0;
    }
    let predicted = model.predict_labels(x);
    let correct = predicted
        .iter()
        .zip(labels.iter())
        .filter(|(a, b)| a == b)
        .count();
    correct as f64 / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Trivial classifier: class = sign of the first feature.
    struct SignModel;

    impl PredictProba for SignModel {
        fn predict_proba(&self, x: &Matrix) -> Matrix {
            Matrix::from_fn(x.rows(), 2, |i, j| {
                let pos = x.row(i)[0] > 0.0;
                match (pos, j) {
                    (true, 1) | (false, 0) => 0.9,
                    _ => 0.1,
                }
            })
        }
        fn n_features(&self) -> usize {
            1
        }
        fn n_classes(&self) -> usize {
            2
        }
    }

    #[test]
    fn predict_labels_argmax() {
        let x = Matrix::from_rows(&[vec![1.0], vec![-1.0]]).unwrap();
        assert_eq!(SignModel.predict_labels(&x), vec![1, 0]);
    }

    #[test]
    fn accuracy_counts_matches() {
        let x = Matrix::from_rows(&[vec![1.0], vec![-1.0], vec![2.0]]).unwrap();
        let acc = accuracy(&SignModel, &x, &[1, 0, 0]);
        assert!((acc - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn accuracy_empty_is_zero() {
        let x = Matrix::zeros(0, 1);
        assert_eq!(accuracy(&SignModel, &x, &[]), 0.0);
    }
}
