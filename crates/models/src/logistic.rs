//! Logistic regression: binary (sigmoid) and multinomial (softmax).
//!
//! The attack math in Section IV-A addresses exactly this family:
//!
//! * binary: `v₁ = σ(θᵀx + b)`;
//! * multi-class: `c` linear models `z_k = x·θ^{(k)} + b_k` composed with
//!   a softmax.
//!
//! Weights are stored as a dense `d × c` matrix (one column per class;
//! binary uses `c = 1` column) plus a bias row, and are directly readable
//! by the adversary — the threat model hands the trained `θ` to the
//! active party.

use crate::traits::{DifferentiableModel, PredictProba};
use fia_data::{one_hot, Dataset};
use fia_linalg::vecops::{sigmoid, softmax};
use fia_linalg::Matrix;
use fia_tensor::{xavier_uniform, Adam, Optimizer, Params, Tape, VarId};
use rand::seq::SliceRandom;
use rand::{rngs::StdRng, SeedableRng};

/// Training configuration for [`LogisticRegression::fit`].
#[derive(Debug, Clone)]
pub struct LrConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// L2 regularization coefficient (the paper's Ω(θ) term).
    pub l2: f64,
    /// RNG seed for init and batch shuffling.
    pub seed: u64,
}

impl Default for LrConfig {
    fn default() -> Self {
        LrConfig {
            epochs: 40,
            batch_size: 64,
            lr: 0.05,
            l2: 1e-4,
            seed: 0,
        }
    }
}

/// A trained (multinomial or binary) logistic regression model.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    /// Weight matrix: `d × c` for multi-class, `d × 1` for binary.
    weights: Matrix,
    /// Bias per class column (length matches `weights.cols()`).
    bias: Vec<f64>,
    /// Number of classes `c` (≥ 2; binary stores one column but reports 2).
    n_classes: usize,
}

impl LogisticRegression {
    /// Trains on a dataset with mini-batch Adam.
    ///
    /// Binary problems (`c = 2`) train a single sigmoid column (the
    /// paper's binary LR); `c > 2` trains a softmax over `c` columns.
    pub fn fit(train: &Dataset, config: &LrConfig) -> Self {
        let d = train.n_features();
        let c = train.n_classes;
        assert!(c >= 2, "need at least two classes");
        let binary = c == 2;
        let out_cols = if binary { 1 } else { c };

        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut params = Params::new();
        let w = params.insert(xavier_uniform(d, out_cols, &mut rng));
        let b = params.insert(Matrix::zeros(1, out_cols));
        let mut opt = Adam::new(config.lr);

        let n = train.n_samples();
        let mut order: Vec<usize> = (0..n).collect();
        let targets_soft = one_hot(&train.labels, c);

        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(config.batch_size.max(1)) {
                let xb = train.features.select_rows(chunk).expect("rows in range");
                let mut tape = Tape::new();
                let x = tape.input(xb);
                let wv = tape.param(&params, w);
                let bv = tape.param(&params, b);
                let z = tape.matmul(x, wv);
                let z = tape.add_row_broadcast(z, bv);
                let loss = if binary {
                    // Sigmoid + MSE-on-probability is adequate for binary
                    // LR at this scale and keeps the engine's fused ops
                    // exercised. Following the paper's convention, the
                    // sigmoid output v₁ is the probability of the *first*
                    // class (label 0).
                    let p = tape.sigmoid(z);
                    let y = Matrix::from_fn(chunk.len(), 1, |i, _| {
                        if train.labels[chunk[i]] == 0 {
                            1.0
                        } else {
                            0.0
                        }
                    });
                    let yv = tape.input(y);
                    tape.mse_loss(p, yv)
                } else {
                    let t = targets_soft.select_rows(chunk).expect("rows in range");
                    let tv = tape.input(t);
                    tape.cross_entropy_logits(z, tv)
                };
                // L2 penalty on weights.
                let loss = if config.l2 > 0.0 {
                    let w2 = tape.hadamard(wv, wv);
                    let w2s = tape.sum_all(w2);
                    let reg = tape.scale(w2s, config.l2);
                    tape.add(loss, reg)
                } else {
                    loss
                };
                tape.backward(loss);
                let grads = tape.param_grads();
                opt.step(&mut params, &grads);
            }
        }

        LogisticRegression {
            weights: params.get(w).clone(),
            bias: params.get(b).row(0).to_vec(),
            n_classes: c,
        }
    }

    /// Builds a model directly from parameters (used by tests and the
    /// paper's worked Example 1, which specifies `Θ` explicitly).
    ///
    /// `weights` is `d × c` (or `d × 1` with `n_classes = 2`), `bias` one
    /// entry per weight column.
    pub fn from_parameters(weights: Matrix, bias: Vec<f64>, n_classes: usize) -> Self {
        assert_eq!(weights.cols(), bias.len(), "bias length mismatch");
        assert!(
            (n_classes == 2 && weights.cols() == 1) || weights.cols() == n_classes,
            "weight columns must be 1 (binary) or c"
        );
        LogisticRegression {
            weights,
            bias,
            n_classes,
        }
    }

    /// `true` for the single-column sigmoid parameterization.
    pub fn is_binary(&self) -> bool {
        self.weights.cols() == 1
    }

    /// The weight matrix `θ` (readable by the adversary).
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// The bias vector (readable by the adversary).
    pub fn bias(&self) -> &[f64] {
        &self.bias
    }

    /// Raw linear scores `z` before the link function (`n × cols`).
    pub fn decision_function(&self, x: &Matrix) -> Matrix {
        let mut z = x.matmul(&self.weights).expect("feature width matches");
        for i in 0..z.rows() {
            for (j, v) in z.row_mut(i).iter_mut().enumerate() {
                *v += self.bias[j];
            }
        }
        z
    }
}

impl PredictProba for LogisticRegression {
    fn predict_proba(&self, x: &Matrix) -> Matrix {
        let z = self.decision_function(x);
        if self.is_binary() {
            // v = (p, 1 − p): the paper's convention that v₁ is the
            // probability of the *first* class.
            Matrix::from_fn(z.rows(), 2, |i, j| {
                let p = sigmoid(z[(i, 0)]);
                if j == 0 {
                    p
                } else {
                    1.0 - p
                }
            })
        } else {
            let mut out = Matrix::zeros(z.rows(), self.n_classes);
            for i in 0..z.rows() {
                let s = softmax(z.row(i));
                out.row_mut(i).copy_from_slice(&s);
            }
            out
        }
    }

    fn n_features(&self) -> usize {
        self.weights.rows()
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

impl DifferentiableModel for LogisticRegression {
    fn forward_frozen(&self, tape: &mut Tape, x: VarId) -> VarId {
        let w = tape.input(self.weights.clone());
        let b = tape.input(Matrix::row_vector(&self.bias));
        let z = tape.matmul(x, w);
        let z = tape.add_row_broadcast(z, b);
        if self.is_binary() {
            let p = tape.sigmoid(z); // batch × 1
            let negp = tape.scale(p, -1.0);
            let one_minus = tape.add_scalar(negp, 1.0);
            tape.concat_cols(p, one_minus)
        } else {
            tape.softmax_rows(z)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::accuracy;
    use fia_data::{make_classification, normalize_dataset, SynthConfig};

    fn toy_dataset(c: usize, seed: u64) -> Dataset {
        let cfg = SynthConfig {
            n_samples: 600,
            n_features: 8,
            n_informative: 6,
            n_redundant: 2,
            n_classes: c,
            class_sep: 2.0,
            redundant_noise: 0.2,
            flip_y: 0.0,
            shuffle_features: false,
            seed,
        };
        normalize_dataset(&make_classification(&cfg)).0
    }

    #[test]
    fn binary_training_beats_chance() {
        let ds = toy_dataset(2, 1);
        let model = LogisticRegression::fit(&ds, &LrConfig::default());
        let acc = accuracy(&model, &ds.features, &ds.labels);
        assert!(acc > 0.85, "binary accuracy {acc}");
        assert!(model.is_binary());
        assert_eq!(model.n_classes(), 2);
    }

    #[test]
    fn multiclass_training_beats_chance() {
        let ds = toy_dataset(4, 2);
        let model = LogisticRegression::fit(&ds, &LrConfig::default());
        let acc = accuracy(&model, &ds.features, &ds.labels);
        assert!(acc > 0.7, "multiclass accuracy {acc}");
        assert!(!model.is_binary());
    }

    #[test]
    fn proba_rows_sum_to_one() {
        let ds = toy_dataset(3, 3);
        let model = LogisticRegression::fit(
            &ds,
            &LrConfig {
                epochs: 5,
                ..Default::default()
            },
        );
        let p = model.predict_proba(&ds.features);
        assert_eq!(p.cols(), 3);
        for i in 0..p.rows() {
            let s: f64 = p.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn binary_proba_is_p_and_one_minus_p() {
        let w = Matrix::from_rows(&[vec![1.0], vec![-1.0]]).unwrap();
        let model = LogisticRegression::from_parameters(w, vec![0.5], 2);
        let x = Matrix::from_rows(&[vec![0.3, 0.2]]).unwrap();
        let p = model.predict_proba(&x);
        let z = 0.3 - 0.2 + 0.5;
        assert!((p[(0, 0)] - sigmoid(z)).abs() < 1e-12);
        assert!((p[(0, 0)] + p[(0, 1)] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn frozen_forward_matches_predict_proba() {
        for c in [2usize, 4] {
            let ds = toy_dataset(c, 7);
            let model = LogisticRegression::fit(
                &ds,
                &LrConfig {
                    epochs: 3,
                    ..Default::default()
                },
            );
            let x = ds.features.select_rows(&[0, 1, 2]).unwrap();
            let direct = model.predict_proba(&x);
            let mut tape = Tape::new();
            let xv = tape.input(x);
            let out = model.forward_frozen(&mut tape, xv);
            assert!(
                tape.value(out).max_abs_diff(&direct).unwrap() < 1e-10,
                "c = {c}"
            );
        }
    }

    #[test]
    fn frozen_forward_collects_no_param_grads() {
        let ds = toy_dataset(2, 8);
        let model = LogisticRegression::fit(
            &ds,
            &LrConfig {
                epochs: 2,
                ..Default::default()
            },
        );
        let mut tape = Tape::new();
        let x = tape.input(ds.features.select_rows(&[0]).unwrap());
        let out = model.forward_frozen(&mut tape, x);
        let loss = tape.mean_all(out);
        tape.backward(loss);
        assert!(tape.param_grads().is_empty());
    }

    #[test]
    fn decision_function_applies_bias() {
        let w = Matrix::from_rows(&[vec![2.0, 0.0], vec![0.0, 3.0]]).unwrap();
        let model = LogisticRegression::from_parameters(w, vec![1.0, -1.0], 2);
        // Note: 2 weight columns with n_classes = 2 is also accepted
        // (softmax parameterization of a binary problem).
        let x = Matrix::from_rows(&[vec![1.0, 1.0]]).unwrap();
        let z = model.decision_function(&x);
        assert_eq!(z.row(0), &[3.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "bias length")]
    fn mismatched_bias_rejected() {
        LogisticRegression::from_parameters(Matrix::zeros(2, 2), vec![0.0], 2);
    }
}
