//! Random-forest distillation into a differentiable MLP (Section V-B).
//!
//! "The adversary first generates a number of dummy samples from the whole
//! data space, then predicts each dummy sample by the RF model. … the
//! adversary could train an NN model θ_A based on (D_dummy, V_dummy)" —
//! after which the surrogate replaces the forest inside Algorithm 2.
//!
//! Dummy inputs are uniform over `(0, 1)^d`, which *is* the whole data
//! space because every dataset is min-max normalized first. Targets are
//! the forest's soft vote fractions, matched with MSE on probabilities.

use crate::forest::RandomForest;
use crate::mlp::{Activation, Mlp, MlpConfig};
use crate::traits::PredictProba;
use fia_linalg::Matrix;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Configuration for [`distill_forest`].
#[derive(Debug, Clone)]
pub struct DistillConfig {
    /// Number of dummy samples to label with the forest.
    pub n_dummy: usize,
    /// Surrogate hidden-layer widths (paper: `[2000, 200]`).
    pub hidden: Vec<usize>,
    /// Training epochs for the surrogate.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// RNG seed for dummy sampling and surrogate init.
    pub seed: u64,
    /// Jitter added to pool-sampled dummy values in
    /// [`distill_forest_with_pool`] (uniform in `±jitter/2`), so the
    /// surrogate sees a neighbourhood of each pooled value rather than
    /// exact repeats.
    pub marginal_jitter: f64,
}

impl DistillConfig {
    /// The paper's surrogate: two hidden layers, 2000 and 200 neurons.
    pub fn paper() -> Self {
        DistillConfig {
            n_dummy: 10_000,
            hidden: vec![2000, 200],
            epochs: 30,
            batch_size: 64,
            lr: 1e-3,
            seed: 0,
            marginal_jitter: 0.02,
        }
    }

    /// Scaled-down profile for fast experiment runs.
    pub fn fast() -> Self {
        DistillConfig {
            n_dummy: 2_000,
            hidden: vec![128, 64],
            epochs: 25,
            batch_size: 64,
            lr: 2e-3,
            seed: 0,
            marginal_jitter: 0.02,
        }
    }
}

/// Trains an MLP surrogate that imitates `forest` on uniform dummy
/// samples over `(0,1)^d` — the paper's "whole data space" strategy.
///
/// The returned [`Mlp`] implements [`crate::DifferentiableModel`], so the
/// GRN attack can backpropagate through it where the forest itself is
/// non-differentiable.
pub fn distill_forest(forest: &RandomForest, config: &DistillConfig) -> Mlp {
    let d = forest.n_features();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let dummy = Matrix::from_fn(config.n_dummy, d, |_, _| rng.gen::<f64>());
    fit_surrogate(forest, config, dummy)
}

/// Distillation with dummy values bootstrapped from an empirical value
/// pool — typically the adversary's *own* observed feature values, which
/// the threat model grants it.
///
/// Uniform dummies waste surrogate capacity when the real data
/// concentrates in a small region of `(0,1)^d` (e.g. skewed monetary
/// features): the forest's fine-grained cells near the data get almost no
/// dummy coverage, and the surrogate misfits exactly where GRNA needs
/// gradients. Sampling each dummy coordinate from the pool (plus a small
/// jitter) concentrates coverage where it matters, without assuming
/// anything about the *target party's* distribution.
pub fn distill_forest_with_pool(
    forest: &RandomForest,
    config: &DistillConfig,
    pool: &[f64],
) -> Mlp {
    assert!(!pool.is_empty(), "value pool must be non-empty");
    let d = forest.n_features();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let j = config.marginal_jitter;
    let dummy = Matrix::from_fn(config.n_dummy, d, |_, _| {
        let v = pool[rng.gen_range(0..pool.len())] + j * (rng.gen::<f64>() - 0.5);
        v.clamp(0.0, 1.0)
    });
    fit_surrogate(forest, config, dummy)
}

fn fit_surrogate(forest: &RandomForest, config: &DistillConfig, dummy: Matrix) -> Mlp {
    let targets = forest.predict_proba(&dummy);
    let mlp_cfg = MlpConfig {
        hidden: config.hidden.clone(),
        activation: Activation::Relu,
        layer_norm: false,
        dropout: None,
        epochs: config.epochs,
        batch_size: config.batch_size,
        lr: config.lr,
        seed: config.seed.wrapping_add(1),
    };
    let mut surrogate = Mlp::new(forest.n_features(), forest.n_classes(), &mlp_cfg);
    surrogate.train_soft_targets(
        &dummy,
        &targets,
        config.epochs,
        config.batch_size,
        config.lr,
        config.seed.wrapping_add(2),
    );
    surrogate
}

/// Mean absolute deviation between surrogate and forest confidences on a
/// fresh uniform sample — a fidelity diagnostic for the distillation.
pub fn distillation_fidelity(forest: &RandomForest, surrogate: &Mlp, n: usize, seed: u64) -> f64 {
    let d = forest.n_features();
    let mut rng = StdRng::seed_from_u64(seed);
    let probe = Matrix::from_fn(n, d, |_, _| rng.gen::<f64>());
    let pf = forest.predict_proba(&probe);
    let ps = surrogate.predict_proba(&probe);
    pf.as_slice()
        .iter()
        .zip(ps.as_slice().iter())
        .map(|(&a, &b)| (a - b).abs())
        .sum::<f64>()
        / pf.as_slice().len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::ForestConfig;
    use fia_data::{make_classification, normalize_dataset, SynthConfig};

    fn toy_forest(seed: u64) -> RandomForest {
        let cfg = SynthConfig {
            n_samples: 300,
            n_features: 6,
            n_informative: 4,
            n_redundant: 1,
            n_classes: 2,
            class_sep: 2.0,
            redundant_noise: 0.2,
            flip_y: 0.0,
            shuffle_features: false,
            seed,
        };
        let ds = normalize_dataset(&make_classification(&cfg)).0;
        RandomForest::fit(
            &ds,
            &ForestConfig {
                n_trees: 15,
                seed,
                ..ForestConfig::default()
            },
        )
    }

    fn small_distill(seed: u64) -> DistillConfig {
        DistillConfig {
            n_dummy: 800,
            hidden: vec![48, 24],
            epochs: 30,
            batch_size: 32,
            lr: 3e-3,
            seed,
            marginal_jitter: 0.02,
        }
    }

    #[test]
    fn surrogate_tracks_forest() {
        let forest = toy_forest(1);
        let surrogate = distill_forest(&forest, &small_distill(1));
        let fidelity = distillation_fidelity(&forest, &surrogate, 400, 99);
        // Mean absolute confidence gap well under chance level (0.5).
        assert!(fidelity < 0.15, "fidelity {fidelity}");
    }

    #[test]
    fn surrogate_agrees_on_hard_labels() {
        let forest = toy_forest(2);
        let surrogate = distill_forest(&forest, &small_distill(2));
        let mut rng = StdRng::seed_from_u64(7);
        let probe = Matrix::from_fn(300, forest.n_features(), |_, _| rng.gen::<f64>());
        let lf = forest.predict_labels(&probe);
        let ls = surrogate.predict_labels(&probe);
        let agree = lf.iter().zip(ls.iter()).filter(|(a, b)| a == b).count();
        let rate = agree as f64 / lf.len() as f64;
        assert!(rate > 0.8, "label agreement {rate}");
    }

    #[test]
    fn surrogate_shapes_match_forest() {
        let forest = toy_forest(3);
        let surrogate = distill_forest(&forest, &small_distill(3));
        assert_eq!(surrogate.n_features(), forest.n_features());
        assert_eq!(surrogate.n_classes(), forest.n_classes());
    }
}
