//! Feed-forward neural network (MLP) with the paper's topology.
//!
//! The vertical FL NN model in Section VI-A: an input layer of width `d`,
//! three hidden layers (600, 300, 100) and a softmax output of width `c`.
//! Dropout between hidden layers implements the Section VII
//! countermeasure; LayerNorm after each hidden layer is used by the GRN
//! generator (Section VI-C).

use crate::traits::{DifferentiableModel, PredictProba};
use fia_data::{one_hot, Dataset};
use fia_linalg::Matrix;
use fia_tensor::{he_normal, Adam, Optimizer, Params, Tape, VarId};
use rand::seq::SliceRandom;
use rand::{rngs::StdRng, SeedableRng};

/// Hidden-layer activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// `max(0, x)` — default for classifier stacks.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

/// Architecture + training configuration for [`Mlp`].
#[derive(Debug, Clone)]
pub struct MlpConfig {
    /// Hidden layer widths, e.g. the paper's `[600, 300, 100]`.
    pub hidden: Vec<usize>,
    /// Hidden activation.
    pub activation: Activation,
    /// Apply LayerNorm after each hidden activation.
    pub layer_norm: bool,
    /// Dropout probability between hidden layers (`None` disables; this is
    /// the Fig. 11e-f defense knob).
    pub dropout: Option<f64>,
    /// Number of training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// RNG seed (init, shuffling, dropout masks).
    pub seed: u64,
}

impl MlpConfig {
    /// The paper's vertical-FL NN: hidden layers 600/300/100, ReLU.
    pub fn paper_vfl() -> Self {
        MlpConfig {
            hidden: vec![600, 300, 100],
            activation: Activation::Relu,
            layer_norm: false,
            dropout: None,
            epochs: 30,
            batch_size: 64,
            lr: 1e-3,
            seed: 0,
        }
    }

    /// A scaled-down profile for fast experiment runs; same shape of
    /// architecture (three hidden layers), an order of magnitude smaller.
    pub fn fast() -> Self {
        MlpConfig {
            hidden: vec![64, 32, 16],
            activation: Activation::Relu,
            layer_norm: false,
            dropout: None,
            epochs: 20,
            batch_size: 64,
            lr: 2e-3,
            seed: 0,
        }
    }

    /// Enables the dropout defense with probability `p`.
    pub fn with_dropout(mut self, p: f64) -> Self {
        self.dropout = Some(p);
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Per-layer parameter handles.
#[derive(Debug, Clone)]
struct LayerIds {
    w: fia_tensor::ParamId,
    b: fia_tensor::ParamId,
    /// LayerNorm gain/bias when enabled (hidden layers only).
    ln: Option<(fia_tensor::ParamId, fia_tensor::ParamId)>,
}

/// A trained multilayer perceptron classifier.
#[derive(Debug, Clone)]
pub struct Mlp {
    params: Params,
    layers: Vec<LayerIds>,
    activation: Activation,
    n_features: usize,
    n_classes: usize,
    dropout: Option<f64>,
}

impl Mlp {
    /// Initializes an untrained network with He-normal weights.
    pub fn new(n_features: usize, n_classes: usize, config: &MlpConfig) -> Self {
        assert!(n_classes >= 2, "need at least two classes");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut params = Params::new();
        let mut layers = Vec::new();
        let mut width = n_features;
        for &h in &config.hidden {
            let w = params.insert(he_normal(width, h, &mut rng));
            let b = params.insert(Matrix::zeros(1, h));
            let ln = config.layer_norm.then(|| {
                let gamma = params.insert(Matrix::filled(1, h, 1.0));
                let beta = params.insert(Matrix::zeros(1, h));
                (gamma, beta)
            });
            layers.push(LayerIds { w, b, ln });
            width = h;
        }
        let w = params.insert(he_normal(width, n_classes, &mut rng));
        let b = params.insert(Matrix::zeros(1, n_classes));
        layers.push(LayerIds { w, b, ln: None });
        Mlp {
            params,
            layers,
            activation: config.activation,
            n_features,
            n_classes,
            dropout: config.dropout,
        }
    }

    /// Trains a fresh network on `train` and returns it.
    pub fn fit(train: &Dataset, config: &MlpConfig) -> Self {
        let mut model = Mlp::new(train.n_features(), train.n_classes, config);
        model.train_epochs(train, config);
        model
    }

    /// Runs `config.epochs` of mini-batch Adam on an existing network.
    pub fn train_epochs(&mut self, train: &Dataset, config: &MlpConfig) {
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(0x5eed));
        let mut opt = Adam::new(config.lr);
        let n = train.n_samples();
        let mut order: Vec<usize> = (0..n).collect();
        let targets = one_hot(&train.labels, self.n_classes);

        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(config.batch_size.max(1)) {
                let xb = train.features.select_rows(chunk).expect("rows in range");
                let tb = targets.select_rows(chunk).expect("rows in range");
                let mut tape = Tape::new();
                let x = tape.input(xb);
                let logits = self.logits_on_tape(&mut tape, x, true, &mut rng);
                let tv = tape.input(tb);
                let loss = tape.cross_entropy_logits(logits, tv);
                tape.backward(loss);
                let grads = tape.param_grads();
                opt.step(&mut self.params, &grads);
            }
        }
    }

    /// Trains against *soft targets* (probability rows) with MSE — used by
    /// random-forest distillation where labels are confidence vectors.
    pub fn train_soft_targets(
        &mut self,
        inputs: &Matrix,
        soft_targets: &Matrix,
        epochs: usize,
        batch_size: usize,
        lr: f64,
        seed: u64,
    ) {
        assert_eq!(inputs.rows(), soft_targets.rows(), "row count mismatch");
        assert_eq!(soft_targets.cols(), self.n_classes, "target width mismatch");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut opt = Adam::new(lr);
        let mut order: Vec<usize> = (0..inputs.rows()).collect();
        for _ in 0..epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(batch_size.max(1)) {
                let xb = inputs.select_rows(chunk).expect("rows in range");
                let tb = soft_targets.select_rows(chunk).expect("rows in range");
                let mut tape = Tape::new();
                let x = tape.input(xb);
                let logits = self.logits_on_tape(&mut tape, x, true, &mut rng);
                let probs = tape.softmax_rows(logits);
                let tv = tape.input(tb);
                let loss = tape.mse_loss(probs, tv);
                tape.backward(loss);
                let grads = tape.param_grads();
                opt.step(&mut self.params, &grads);
            }
        }
    }

    /// Builds the logits sub-graph. `training = true` binds trainable
    /// parameters and applies dropout; `training = false` (or
    /// [`Mlp::frozen_logits`]) freezes the weights as constants.
    fn logits_on_tape(&self, tape: &mut Tape, x: VarId, training: bool, rng: &mut StdRng) -> VarId {
        let mut h = x;
        let last = self.layers.len() - 1;
        for (li, layer) in self.layers.iter().enumerate() {
            let w = if training {
                tape.param(&self.params, layer.w)
            } else {
                tape.input(self.params.get(layer.w).clone())
            };
            let b = if training {
                tape.param(&self.params, layer.b)
            } else {
                tape.input(self.params.get(layer.b).clone())
            };
            h = tape.matmul(h, w);
            h = tape.add_row_broadcast(h, b);
            if li < last {
                h = match self.activation {
                    Activation::Relu => tape.relu(h),
                    Activation::Tanh => tape.tanh(h),
                    Activation::Sigmoid => tape.sigmoid(h),
                };
                if let Some((gamma, beta)) = layer.ln {
                    let g = if training {
                        tape.param(&self.params, gamma)
                    } else {
                        tape.input(self.params.get(gamma).clone())
                    };
                    let be = if training {
                        tape.param(&self.params, beta)
                    } else {
                        tape.input(self.params.get(beta).clone())
                    };
                    h = tape.layer_norm(h, g, be, 1e-5);
                }
                if training {
                    if let Some(p) = self.dropout {
                        h = tape.dropout(h, p, rng);
                    }
                }
            }
        }
        h
    }

    /// Frozen logits for attack graphs (no dropout, constant weights).
    pub fn frozen_logits(&self, tape: &mut Tape, x: VarId) -> VarId {
        // RNG is unused on the frozen path (no dropout); any seed works.
        let mut rng = StdRng::seed_from_u64(0);
        self.logits_on_tape(tape, x, false, &mut rng)
    }

    /// Borrow of the underlying parameter store.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Total number of scalar parameters.
    pub fn parameter_count(&self) -> usize {
        self.params.scalar_count()
    }

    /// Serializes architecture + weights (see [`crate::bytesio`]).
    pub fn to_bytes(&self) -> Vec<u8> {
        use crate::bytesio::Writer;
        let mut w = Writer::with_header(*b"FINN", 1);
        w.usize(self.n_features);
        w.usize(self.n_classes);
        w.u8(match self.activation {
            Activation::Relu => 0,
            Activation::Tanh => 1,
            Activation::Sigmoid => 2,
        });
        match self.dropout {
            Some(p) => {
                w.bool(true);
                w.f64(p);
            }
            None => w.bool(false),
        }
        w.usize(self.layers.len());
        for layer in &self.layers {
            w.matrix(self.params.get(layer.w));
            w.matrix(self.params.get(layer.b));
            match layer.ln {
                Some((gamma, beta)) => {
                    w.bool(true);
                    w.matrix(self.params.get(gamma));
                    w.matrix(self.params.get(beta));
                }
                None => w.bool(false),
            }
        }
        w.finish()
    }

    /// Deserializes a network written by [`Mlp::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, crate::bytesio::DecodeError> {
        use crate::bytesio::{DecodeError, Reader};
        let (mut r, version) = Reader::with_header(bytes, *b"FINN")?;
        if version != 1 {
            return Err(DecodeError::BadVersion(version));
        }
        let n_features = r.usize()?;
        let n_classes = r.usize()?;
        let activation = match r.u8()? {
            0 => Activation::Relu,
            1 => Activation::Tanh,
            2 => Activation::Sigmoid,
            other => return Err(DecodeError::Corrupt(format!("bad activation {other}"))),
        };
        let dropout = if r.bool()? { Some(r.f64()?) } else { None };
        let n_layers = r.usize()?;
        if n_layers == 0 {
            return Err(DecodeError::Corrupt("network with no layers".into()));
        }
        let mut params = Params::new();
        let mut layers = Vec::with_capacity(n_layers);
        let mut expect_in = n_features;
        for li in 0..n_layers {
            let wm = r.matrix()?;
            let bm = r.matrix()?;
            if wm.rows() != expect_in || bm.shape() != (1, wm.cols()) {
                return Err(DecodeError::Corrupt(format!(
                    "layer {li} shape mismatch: {}x{} after width {expect_in}",
                    wm.rows(),
                    wm.cols()
                )));
            }
            expect_in = wm.cols();
            let w = params.insert(wm);
            let b = params.insert(bm);
            let ln = if r.bool()? {
                let gm = r.matrix()?;
                let bm2 = r.matrix()?;
                if gm.shape() != (1, expect_in) || bm2.shape() != (1, expect_in) {
                    return Err(DecodeError::Corrupt(format!(
                        "layer {li} LayerNorm shape mismatch"
                    )));
                }
                Some((params.insert(gm), params.insert(bm2)))
            } else {
                None
            };
            layers.push(LayerIds { w, b, ln });
        }
        if expect_in != n_classes {
            return Err(DecodeError::Corrupt(format!(
                "output width {expect_in} but {n_classes} classes"
            )));
        }
        Ok(Mlp {
            params,
            layers,
            activation,
            n_features,
            n_classes,
            dropout,
        })
    }
}

impl PredictProba for Mlp {
    fn predict_proba(&self, x: &Matrix) -> Matrix {
        let mut tape = Tape::new();
        let xv = tape.input(x.clone());
        let logits = self.frozen_logits(&mut tape, xv);
        let probs = tape.softmax_rows(logits);
        tape.value(probs).clone()
    }

    fn n_features(&self) -> usize {
        self.n_features
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

impl DifferentiableModel for Mlp {
    fn forward_frozen(&self, tape: &mut Tape, x: VarId) -> VarId {
        let logits = self.frozen_logits(tape, x);
        tape.softmax_rows(logits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::accuracy;
    use fia_data::{make_classification, normalize_dataset, SynthConfig};

    fn toy_dataset(c: usize, seed: u64) -> Dataset {
        let cfg = SynthConfig {
            n_samples: 500,
            n_features: 10,
            n_informative: 7,
            n_redundant: 2,
            n_classes: c,
            class_sep: 2.0,
            redundant_noise: 0.2,
            flip_y: 0.0,
            shuffle_features: false,
            seed,
        };
        normalize_dataset(&make_classification(&cfg)).0
    }

    fn small_config() -> MlpConfig {
        MlpConfig {
            hidden: vec![32, 16],
            activation: Activation::Relu,
            layer_norm: false,
            dropout: None,
            epochs: 30,
            batch_size: 32,
            lr: 3e-3,
            seed: 5,
        }
    }

    #[test]
    fn training_beats_chance_binary() {
        let ds = toy_dataset(2, 1);
        let model = Mlp::fit(&ds, &small_config());
        let acc = accuracy(&model, &ds.features, &ds.labels);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn training_beats_chance_multiclass() {
        let ds = toy_dataset(5, 2);
        let model = Mlp::fit(&ds, &small_config());
        let acc = accuracy(&model, &ds.features, &ds.labels);
        assert!(acc > 0.75, "accuracy {acc}");
    }

    #[test]
    fn proba_rows_sum_to_one() {
        let ds = toy_dataset(3, 3);
        let model = Mlp::fit(
            &ds,
            &MlpConfig {
                epochs: 2,
                ..small_config()
            },
        );
        let p = model.predict_proba(&ds.features);
        for i in 0..p.rows() {
            let s: f64 = p.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn dropout_training_still_learns() {
        let ds = toy_dataset(2, 4);
        let cfg = small_config().with_dropout(0.3);
        let model = Mlp::fit(&ds, &cfg);
        let acc = accuracy(&model, &ds.features, &ds.labels);
        assert!(acc > 0.8, "accuracy with dropout {acc}");
    }

    #[test]
    fn layer_norm_training_works() {
        let ds = toy_dataset(3, 6);
        let mut cfg = small_config();
        cfg.layer_norm = true;
        let model = Mlp::fit(&ds, &cfg);
        let acc = accuracy(&model, &ds.features, &ds.labels);
        assert!(acc > 0.7, "accuracy with layer norm {acc}");
    }

    #[test]
    fn frozen_forward_matches_predict_proba() {
        let ds = toy_dataset(4, 7);
        let model = Mlp::fit(
            &ds,
            &MlpConfig {
                epochs: 3,
                ..small_config()
            },
        );
        let x = ds.features.select_rows(&[0, 5, 9]).unwrap();
        let direct = model.predict_proba(&x);
        let mut tape = Tape::new();
        let xv = tape.input(x);
        let out = model.forward_frozen(&mut tape, xv);
        assert!(tape.value(out).max_abs_diff(&direct).unwrap() < 1e-12);
    }

    #[test]
    fn frozen_forward_collects_no_param_grads() {
        let ds = toy_dataset(2, 8);
        let model = Mlp::fit(
            &ds,
            &MlpConfig {
                epochs: 1,
                ..small_config()
            },
        );
        let mut tape = Tape::new();
        let x = tape.input(ds.features.select_rows(&[0, 1]).unwrap());
        let out = model.forward_frozen(&mut tape, x);
        let loss = tape.mean_all(out);
        tape.backward(loss);
        assert!(tape.param_grads().is_empty());
    }

    #[test]
    fn parameter_count_matches_architecture() {
        let model = Mlp::new(10, 3, &small_config());
        // (10·32 + 32) + (32·16 + 16) + (16·3 + 3) = 352 + 544 + 51… compute:
        let expected = 10 * 32 + 32 + 32 * 16 + 16 + 16 * 3 + 3;
        assert_eq!(model.parameter_count(), expected);
    }

    #[test]
    fn persistence_roundtrip_preserves_predictions() {
        let ds = toy_dataset(3, 9);
        let mut cfg = small_config();
        cfg.layer_norm = true;
        let model = Mlp::fit(&ds, &MlpConfig { epochs: 3, ..cfg });
        let restored = Mlp::from_bytes(&model.to_bytes()).unwrap();
        let a = model.predict_proba(&ds.features);
        let b = restored.predict_proba(&ds.features);
        assert!(a.max_abs_diff(&b).unwrap() < 1e-15);
        assert_eq!(restored.parameter_count(), model.parameter_count());
    }

    #[test]
    fn persistence_rejects_truncation() {
        let ds = toy_dataset(2, 10);
        let model = Mlp::fit(
            &ds,
            &MlpConfig {
                epochs: 1,
                ..small_config()
            },
        );
        let mut bytes = model.to_bytes();
        bytes.truncate(bytes.len() / 3);
        assert!(Mlp::from_bytes(&bytes).is_err());
    }

    #[test]
    fn soft_target_training_converges() {
        // Teach the net to reproduce a fixed soft distribution keyed on
        // the first input feature.
        let inputs = Matrix::from_fn(64, 4, |i, j| {
            if j == 0 {
                (i % 2) as f64
            } else {
                ((i * 7 + j * 3) % 10) as f64 / 10.0
            }
        });
        let targets = Matrix::from_fn(64, 2, |i, j| {
            let p = if i % 2 == 0 { 0.8 } else { 0.2 };
            if j == 0 {
                p
            } else {
                1.0 - p
            }
        });
        let mut model = Mlp::new(4, 2, &small_config());
        model.train_soft_targets(&inputs, &targets, 60, 16, 3e-3, 1);
        let out = model.predict_proba(&inputs);
        let mse: f64 = out
            .as_slice()
            .iter()
            .zip(targets.as_slice().iter())
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum::<f64>()
            / out.as_slice().len() as f64;
        assert!(mse < 0.02, "soft-target mse {mse}");
    }
}
