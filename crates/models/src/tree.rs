//! CART decision tree stored as a full binary array.
//!
//! The path restriction attack (Algorithm 1) indexes tree nodes as a
//! *full binary tree*: node `i`'s children live at `2i + 1` and `2i + 2`.
//! We therefore store the tree exactly that way — a `Vec<TreeNode>` of
//! length `2^(max_depth+1) − 1` — so the attack operates on the model's
//! native representation with no conversion step.
//!
//! Splits are found by exact Gini-impurity minimization over quantile
//! candidate thresholds; branching is `x[feature] ≤ threshold → left`.

use crate::traits::PredictProba;
use fia_data::Dataset;
use fia_linalg::Matrix;
use rand::Rng;

/// A node of the full binary tree.
#[derive(Debug, Clone, PartialEq)]
pub enum TreeNode {
    /// Branching node: `x[feature] ≤ threshold` goes left (index `2i+1`),
    /// otherwise right (index `2i+2`).
    Internal {
        /// Global feature index tested at this node.
        feature: usize,
        /// Branching threshold.
        threshold: f64,
    },
    /// Terminal node carrying the predicted class.
    Leaf {
        /// Majority class of the training samples that reached this node.
        label: usize,
    },
    /// Position not used by this tree (the array is sized for the full
    /// binary tree of `max_depth`, but branches may terminate early).
    Absent,
}

/// Training configuration for [`DecisionTree::fit`].
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0). The paper's DT uses 5, the
    /// forest trees use 3.
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Number of quantile threshold candidates evaluated per feature.
    pub n_thresholds: usize,
    /// When `Some(k)`, only `k` randomly chosen features are considered
    /// per split (random-forest mode); `None` considers all features.
    pub max_features: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 5,
            min_samples_split: 2,
            n_thresholds: 16,
            max_features: None,
        }
    }
}

impl TreeConfig {
    /// The paper's standalone DT configuration (depth 5).
    pub fn paper_dt() -> Self {
        TreeConfig::default()
    }

    /// The paper's random-forest member configuration (depth 3).
    pub fn paper_rf_member() -> Self {
        TreeConfig {
            max_depth: 3,
            ..TreeConfig::default()
        }
    }
}

/// A trained CART decision tree over the full binary array layout.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    nodes: Vec<TreeNode>,
    n_features: usize,
    n_classes: usize,
    max_depth: usize,
}

impl DecisionTree {
    /// Trains a tree on the dataset with a deterministic greedy CART
    /// procedure (plus optional per-split feature subsampling driven by
    /// `rng` when `config.max_features` is set).
    pub fn fit<R: Rng + ?Sized>(train: &Dataset, config: &TreeConfig, rng: &mut R) -> Self {
        assert!(train.n_samples() > 0, "cannot fit on empty dataset");
        let nf = (1usize << (config.max_depth + 1)) - 1;
        let mut nodes = vec![TreeNode::Absent; nf];
        let all_rows: Vec<usize> = (0..train.n_samples()).collect();
        Self::build(train, config, rng, &mut nodes, 0, 0, &all_rows);
        DecisionTree {
            nodes,
            n_features: train.n_features(),
            n_classes: train.n_classes,
            max_depth: config.max_depth,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn build<R: Rng + ?Sized>(
        train: &Dataset,
        config: &TreeConfig,
        rng: &mut R,
        nodes: &mut Vec<TreeNode>,
        index: usize,
        depth: usize,
        rows: &[usize],
    ) {
        let majority = Self::majority_label(train, rows);
        let is_pure = rows
            .iter()
            .all(|&r| train.labels[r] == train.labels[rows[0]]);
        if depth >= config.max_depth || rows.len() < config.min_samples_split || is_pure {
            nodes[index] = TreeNode::Leaf { label: majority };
            return;
        }

        let candidates: Vec<usize> = match config.max_features {
            Some(k) => {
                // Sample k distinct features via partial Fisher-Yates.
                let d = train.n_features();
                let k = k.min(d);
                let mut pool: Vec<usize> = (0..d).collect();
                for i in 0..k {
                    let j = rng.gen_range(i..d);
                    pool.swap(i, j);
                }
                pool.truncate(k);
                pool
            }
            None => (0..train.n_features()).collect(),
        };

        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gini)
        for &f in &candidates {
            for threshold in Self::threshold_candidates(train, rows, f, config.n_thresholds) {
                let gini = Self::weighted_gini(train, rows, f, threshold);
                if let Some(g) = gini {
                    if best.is_none_or(|(_, _, bg)| g < bg) {
                        best = Some((f, threshold, g));
                    }
                }
            }
        }

        let Some((feature, threshold, _)) = best else {
            nodes[index] = TreeNode::Leaf { label: majority };
            return;
        };

        let (left, right): (Vec<usize>, Vec<usize>) = rows
            .iter()
            .partition(|&&r| train.features[(r, feature)] <= threshold);
        if left.is_empty() || right.is_empty() {
            nodes[index] = TreeNode::Leaf { label: majority };
            return;
        }
        nodes[index] = TreeNode::Internal { feature, threshold };
        Self::build(train, config, rng, nodes, 2 * index + 1, depth + 1, &left);
        Self::build(train, config, rng, nodes, 2 * index + 2, depth + 1, &right);
    }

    /// Quantile threshold candidates for feature `f` over `rows`.
    fn threshold_candidates(
        train: &Dataset,
        rows: &[usize],
        f: usize,
        n_thresholds: usize,
    ) -> Vec<f64> {
        let mut values: Vec<f64> = rows.iter().map(|&r| train.features[(r, f)]).collect();
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite features"));
        values.dedup();
        if values.len() < 2 {
            return Vec::new();
        }
        if values.len() <= n_thresholds + 1 {
            // Midpoints between consecutive distinct values.
            return values.windows(2).map(|w| 0.5 * (w[0] + w[1])).collect();
        }
        (1..=n_thresholds)
            .map(|q| {
                let pos = q * (values.len() - 1) / (n_thresholds + 1);
                0.5 * (values[pos] + values[pos + 1])
            })
            .collect()
    }

    /// Weighted Gini impurity of the split, `None` if degenerate.
    fn weighted_gini(train: &Dataset, rows: &[usize], f: usize, threshold: f64) -> Option<f64> {
        let c = train.n_classes;
        let mut left = vec![0usize; c];
        let mut right = vec![0usize; c];
        for &r in rows {
            if train.features[(r, f)] <= threshold {
                left[train.labels[r]] += 1;
            } else {
                right[train.labels[r]] += 1;
            }
        }
        let nl: usize = left.iter().sum();
        let nr: usize = right.iter().sum();
        if nl == 0 || nr == 0 {
            return None;
        }
        let gini = |counts: &[usize], n: usize| -> f64 {
            1.0 - counts
                .iter()
                .map(|&k| {
                    let p = k as f64 / n as f64;
                    p * p
                })
                .sum::<f64>()
        };
        let total = (nl + nr) as f64;
        Some(nl as f64 / total * gini(&left, nl) + nr as f64 / total * gini(&right, nr))
    }

    fn majority_label(train: &Dataset, rows: &[usize]) -> usize {
        let mut counts = vec![0usize; train.n_classes];
        for &r in rows {
            counts[train.labels[r]] += 1;
        }
        fia_linalg::vecops::argmax(&counts.iter().map(|&k| k as f64).collect::<Vec<_>>())
    }

    /// The full binary node array (length `2^(max_depth+1) − 1`).
    pub fn nodes(&self) -> &[TreeNode] {
        &self.nodes
    }

    /// Maximum depth the tree was built with.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Predicts one sample, returning the leaf label.
    pub fn predict_one(&self, x: &[f64]) -> usize {
        self.decision_path(x)
            .last()
            .map(|&i| match &self.nodes[i] {
                TreeNode::Leaf { label } => *label,
                _ => unreachable!("path ends at a leaf"),
            })
            .expect("non-empty path")
    }

    /// The sequence of node indices visited when predicting `x`
    /// (root … leaf). Deterministic — the property PRA exploits.
    pub fn decision_path(&self, x: &[f64]) -> Vec<usize> {
        assert_eq!(x.len(), self.n_features, "feature width mismatch");
        let mut path = Vec::with_capacity(self.max_depth + 1);
        let mut i = 0;
        loop {
            path.push(i);
            match &self.nodes[i] {
                TreeNode::Internal { feature, threshold } => {
                    i = if x[*feature] <= *threshold {
                        2 * i + 1
                    } else {
                        2 * i + 2
                    };
                }
                TreeNode::Leaf { .. } => return path,
                TreeNode::Absent => unreachable!("prediction reached an absent node"),
            }
        }
    }

    /// All root-to-leaf paths (each a vector of node indices); `np` in the
    /// paper's notation is `self.prediction_paths().len()`.
    pub fn prediction_paths(&self) -> Vec<Vec<usize>> {
        let mut paths = Vec::new();
        let mut stack = vec![vec![0usize]];
        while let Some(path) = stack.pop() {
            let i = *path.last().expect("non-empty");
            match &self.nodes[i] {
                TreeNode::Leaf { .. } => paths.push(path),
                TreeNode::Internal { .. } => {
                    for child in [2 * i + 1, 2 * i + 2] {
                        let mut p = path.clone();
                        p.push(child);
                        stack.push(p);
                    }
                }
                TreeNode::Absent => {}
            }
        }
        paths
    }

    /// Number of leaves (= number of prediction paths).
    pub fn n_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, TreeNode::Leaf { .. }))
            .count()
    }

    /// Builds a tree directly from a node array (tests, worked examples).
    ///
    /// # Panics
    /// Panics if the array length is not `2^k − 1`, or the root is absent.
    pub fn from_nodes(nodes: Vec<TreeNode>, n_features: usize, n_classes: usize) -> Self {
        let nf = nodes.len();
        assert!((nf + 1).is_power_of_two(), "length must be 2^k − 1");
        assert!(
            !matches!(nodes[0], TreeNode::Absent),
            "root must be present"
        );
        let max_depth = (nf + 1).trailing_zeros() as usize - 1;
        DecisionTree {
            nodes,
            n_features,
            n_classes,
            max_depth,
        }
    }
}

impl PredictProba for DecisionTree {
    /// DT confidence scores are degenerate: 1 for the predicted class and
    /// 0 elsewhere (Section II-A — "the branching operations are
    /// deterministic in the DT model").
    fn predict_proba(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(x.rows(), self.n_classes);
        for i in 0..x.rows() {
            let label = self.predict_one(x.row(i));
            out[(i, label)] = 1.0;
        }
        out
    }

    fn n_features(&self) -> usize {
        self.n_features
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::accuracy;
    use fia_data::{make_classification, normalize_dataset, SynthConfig};
    use rand::{rngs::StdRng, SeedableRng};

    fn toy_dataset(c: usize, seed: u64) -> Dataset {
        let cfg = SynthConfig {
            n_samples: 500,
            n_features: 8,
            n_informative: 6,
            n_redundant: 2,
            n_classes: c,
            class_sep: 2.0,
            redundant_noise: 0.2,
            flip_y: 0.0,
            shuffle_features: false,
            seed,
        };
        normalize_dataset(&make_classification(&cfg)).0
    }

    /// The Fig. 2 toy tree: age/income on the adversary side,
    /// deposit/#shopping on the target side.
    pub(crate) fn figure2_tree() -> DecisionTree {
        use TreeNode::*;
        // Depth 3 full array (15 slots). Feature ids:
        // 0 = age, 1 = income, 2 = deposit, 3 = #shopping.
        let nodes = vec![
            Internal {
                feature: 0,
                threshold: 30.0,
            }, // 0: age ≤ 30
            Internal {
                feature: 2,
                threshold: 5.0,
            }, // 1: deposit ≤ 5K
            Internal {
                feature: 3,
                threshold: 6.0,
            }, // 2: #shopping ≤ 6
            Internal {
                feature: 1,
                threshold: 3.0,
            }, // 3: income ≤ 3K
            Leaf { label: 1 }, // 4
            Leaf { label: 1 }, // 5
            Internal {
                feature: 1,
                threshold: 2.0,
            }, // 6: income ≤ 2K
            Leaf { label: 2 }, // 7
            Leaf { label: 1 }, // 8  (unused by Fig2 walk)
            Absent,
            Absent,
            Absent,
            Absent,
            Leaf { label: 2 }, // 13
            Leaf { label: 1 }, // 14
        ];
        DecisionTree::from_nodes(nodes, 4, 3)
    }

    #[test]
    fn fit_beats_chance() {
        let ds = toy_dataset(3, 1);
        let mut rng = StdRng::seed_from_u64(0);
        let tree = DecisionTree::fit(&ds, &TreeConfig::paper_dt(), &mut rng);
        let acc = accuracy(&tree, &ds.features, &ds.labels);
        assert!(acc > 0.6, "tree accuracy {acc}");
    }

    #[test]
    fn node_array_is_full_binary_layout() {
        let ds = toy_dataset(2, 2);
        let mut rng = StdRng::seed_from_u64(0);
        let tree = DecisionTree::fit(&ds, &TreeConfig::paper_dt(), &mut rng);
        assert_eq!(tree.nodes().len(), (1 << 6) - 1);
        // Every internal node has both children present.
        for (i, n) in tree.nodes().iter().enumerate() {
            if matches!(n, TreeNode::Internal { .. }) {
                assert!(!matches!(tree.nodes()[2 * i + 1], TreeNode::Absent));
                assert!(!matches!(tree.nodes()[2 * i + 2], TreeNode::Absent));
            }
        }
    }

    #[test]
    fn decision_path_is_consistent_with_prediction() {
        let ds = toy_dataset(3, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let tree = DecisionTree::fit(&ds, &TreeConfig::paper_dt(), &mut rng);
        for i in 0..20 {
            let x = ds.sample(i);
            let path = tree.decision_path(x);
            assert_eq!(path[0], 0, "path starts at root");
            // Consecutive indices follow the child rule.
            for w in path.windows(2) {
                assert!(w[1] == 2 * w[0] + 1 || w[1] == 2 * w[0] + 2);
            }
            let leaf = *path.last().unwrap();
            match &tree.nodes()[leaf] {
                TreeNode::Leaf { label } => assert_eq!(*label, tree.predict_one(x)),
                _ => panic!("path must end at leaf"),
            }
        }
    }

    #[test]
    fn prediction_paths_count_equals_leaves() {
        let ds = toy_dataset(2, 4);
        let mut rng = StdRng::seed_from_u64(2);
        let tree = DecisionTree::fit(&ds, &TreeConfig::paper_dt(), &mut rng);
        assert_eq!(tree.prediction_paths().len(), tree.n_leaves());
        assert!(tree.n_leaves() >= 2);
    }

    #[test]
    fn proba_is_one_hot() {
        let ds = toy_dataset(3, 5);
        let mut rng = StdRng::seed_from_u64(3);
        let tree = DecisionTree::fit(&ds, &TreeConfig::paper_dt(), &mut rng);
        let p = tree.predict_proba(&ds.features.select_rows(&[0, 1, 2]).unwrap());
        for i in 0..3 {
            let row = p.row(i);
            assert_eq!(row.iter().filter(|&&v| v == 1.0).count(), 1);
            assert_eq!(row.iter().sum::<f64>(), 1.0);
        }
    }

    #[test]
    fn figure2_walkthrough() {
        // Example 2: age=25, income=2K, deposit=8K(>5K), shopping=3(≤6)
        // → root left (age≤30), node 1 right (deposit>5K) → node 4, class 1.
        let tree = figure2_tree();
        let x = [25.0, 2.0, 8.0, 3.0];
        assert_eq!(tree.decision_path(&x), vec![0, 1, 4]);
        assert_eq!(tree.predict_one(&x), 1);
    }

    #[test]
    fn depth_limit_respected() {
        let ds = toy_dataset(2, 6);
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = TreeConfig {
            max_depth: 2,
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&ds, &cfg, &mut rng);
        assert_eq!(tree.nodes().len(), 7);
        for path in tree.prediction_paths() {
            assert!(path.len() <= 3);
        }
    }

    #[test]
    fn max_features_subsampling_still_works() {
        let ds = toy_dataset(2, 7);
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = TreeConfig {
            max_features: Some(3),
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&ds, &cfg, &mut rng);
        let acc = accuracy(&tree, &ds.features, &ds.labels);
        assert!(acc > 0.55, "subsampled tree accuracy {acc}");
    }

    #[test]
    #[should_panic(expected = "2^k − 1")]
    fn from_nodes_rejects_bad_length() {
        DecisionTree::from_nodes(vec![TreeNode::Leaf { label: 0 }; 6], 1, 2);
    }

    #[test]
    fn pure_node_stops_early() {
        // All labels identical → a single-leaf tree.
        let features = Matrix::from_fn(20, 3, |i, j| (i * 3 + j) as f64);
        let ds = Dataset::new("const", features, vec![1; 20], 2);
        let mut rng = StdRng::seed_from_u64(6);
        let tree = DecisionTree::fit(&ds, &TreeConfig::paper_dt(), &mut rng);
        assert_eq!(tree.n_leaves(), 1);
        assert_eq!(tree.predict_one(ds.sample(3)), 1);
    }
}
