//! Minimal self-describing binary codec for model persistence.
//!
//! A deliberately tiny format (little-endian, length-prefixed) so trained
//! models can be saved and shipped without pulling a serialization
//! framework into the workspace: `u64` lengths, `f64` values, one magic
//! tag per model family, and a format-version byte for forward
//! compatibility.

use fia_linalg::Matrix;
use std::fmt;

/// Errors from decoding a model byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the announced content.
    UnexpectedEof,
    /// Magic tag didn't match the expected model family.
    BadMagic {
        /// Expected tag.
        expected: [u8; 4],
        /// Found tag.
        found: [u8; 4],
    },
    /// Unsupported format version.
    BadVersion(u8),
    /// A structural invariant failed (e.g. label out of range).
    Corrupt(String),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof => write!(f, "unexpected end of buffer"),
            DecodeError::BadMagic { expected, found } => write!(
                f,
                "bad magic: expected {:?}, found {:?}",
                String::from_utf8_lossy(expected),
                String::from_utf8_lossy(found)
            ),
            DecodeError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            DecodeError::Corrupt(msg) => write!(f, "corrupt model data: {msg}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Append-only byte sink.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Starts a stream with a 4-byte magic tag and a version byte.
    pub fn with_header(magic: [u8; 4], version: u8) -> Self {
        let mut w = Writer { buf: Vec::new() };
        w.buf.extend_from_slice(&magic);
        w.buf.push(version);
        w
    }

    /// Writes a `u64` (LE).
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `f64` (LE bit pattern).
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a single byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Writes a length-prefixed `f64` slice.
    pub fn f64_slice(&mut self, v: &[f64]) {
        self.usize(v.len());
        for &x in v {
            self.f64(x);
        }
    }

    /// Writes a matrix as `(rows, cols, data…)`.
    pub fn matrix(&mut self, m: &Matrix) {
        self.usize(m.rows());
        self.usize(m.cols());
        for &x in m.as_slice() {
            self.f64(x);
        }
    }

    /// Finishes and returns the buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Sequential byte source.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Opens a stream, checking the 4-byte magic and returning the
    /// version byte.
    pub fn with_header(buf: &'a [u8], magic: [u8; 4]) -> Result<(Self, u8), DecodeError> {
        let mut r = Reader { buf, pos: 0 };
        let found = r.bytes::<4>()?;
        if found != magic {
            return Err(DecodeError::BadMagic {
                expected: magic,
                found,
            });
        }
        let version = r.u8()?;
        Ok((r, version))
    }

    fn bytes<const N: usize>(&mut self) -> Result<[u8; N], DecodeError> {
        if self.pos + N > self.buf.len() {
            return Err(DecodeError::UnexpectedEof);
        }
        let mut out = [0u8; N];
        out.copy_from_slice(&self.buf[self.pos..self.pos + N]);
        self.pos += N;
        Ok(out)
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.bytes::<8>()?))
    }

    /// Reads a `usize` (checked against the remaining buffer to bound
    /// allocations on corrupt input).
    pub fn usize(&mut self) -> Result<usize, DecodeError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| DecodeError::Corrupt(format!("length {v} overflows")))
    }

    /// Reads an `f64`.
    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_le_bytes(self.bytes::<8>()?))
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.bytes::<1>()?[0])
    }

    /// Reads a bool byte (must be 0 or 1).
    pub fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(DecodeError::Corrupt(format!("bad bool byte {other}"))),
        }
    }

    /// Reads a length-prefixed `f64` vector.
    pub fn f64_vec(&mut self) -> Result<Vec<f64>, DecodeError> {
        let n = self.usize()?;
        if n.saturating_mul(8).saturating_add(self.pos) > self.buf.len() {
            return Err(DecodeError::UnexpectedEof);
        }
        (0..n).map(|_| self.f64()).collect()
    }

    /// Reads a matrix written by [`Writer::matrix`].
    pub fn matrix(&mut self) -> Result<Matrix, DecodeError> {
        let rows = self.usize()?;
        let cols = self.usize()?;
        let need = rows.saturating_mul(cols).saturating_mul(8);
        if need.saturating_add(self.pos) > self.buf.len() {
            return Err(DecodeError::UnexpectedEof);
        }
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            data.push(self.f64()?);
        }
        Matrix::from_vec(rows, cols, data).map_err(|e| DecodeError::Corrupt(format!("matrix: {e}")))
    }

    /// `true` when the whole buffer was consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut w = Writer::with_header(*b"TEST", 1);
        w.u64(42);
        w.f64(-1.5);
        w.bool(true);
        w.f64_slice(&[1.0, 2.0]);
        w.matrix(&Matrix::identity(2));
        let bytes = w.finish();

        let (mut r, version) = Reader::with_header(&bytes, *b"TEST").unwrap();
        assert_eq!(version, 1);
        assert_eq!(r.u64().unwrap(), 42);
        assert_eq!(r.f64().unwrap(), -1.5);
        assert!(r.bool().unwrap());
        assert_eq!(r.f64_vec().unwrap(), vec![1.0, 2.0]);
        assert_eq!(r.matrix().unwrap(), Matrix::identity(2));
        assert!(r.is_exhausted());
    }

    #[test]
    fn bad_magic_detected() {
        let w = Writer::with_header(*b"AAAA", 1);
        let bytes = w.finish();
        let err = Reader::with_header(&bytes, *b"BBBB").unwrap_err();
        assert!(matches!(err, DecodeError::BadMagic { .. }));
    }

    #[test]
    fn truncation_detected() {
        let mut w = Writer::with_header(*b"TEST", 1);
        w.matrix(&Matrix::filled(4, 4, 1.0));
        let mut bytes = w.finish();
        bytes.truncate(bytes.len() - 3);
        let (mut r, _) = Reader::with_header(&bytes, *b"TEST").unwrap();
        assert_eq!(r.matrix().unwrap_err(), DecodeError::UnexpectedEof);
    }

    #[test]
    fn corrupt_bool_detected() {
        let mut w = Writer::with_header(*b"TEST", 1);
        w.u8(7);
        let bytes = w.finish();
        let (mut r, _) = Reader::with_header(&bytes, *b"TEST").unwrap();
        assert!(matches!(r.bool(), Err(DecodeError::Corrupt(_))));
    }

    #[test]
    fn huge_length_rejected_without_allocation() {
        let mut w = Writer::with_header(*b"TEST", 1);
        w.u64(u64::MAX / 2); // absurd length prefix
        let bytes = w.finish();
        let (mut r, _) = Reader::with_header(&bytes, *b"TEST").unwrap();
        assert!(r.f64_vec().is_err());
    }
}
