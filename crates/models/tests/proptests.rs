//! Property tests on model invariants.

use fia_data::{make_classification, normalize_dataset, Dataset, SynthConfig};
use fia_linalg::Matrix;
use fia_models::{
    DecisionTree, ForestConfig, LogisticRegression, PredictProba, RandomForest, TreeConfig,
    TreeNode,
};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn dataset(seed: u64, n_classes: usize, n_features: usize) -> Dataset {
    let n_informative = (n_features * 2 / 3).max(1);
    let n_redundant = (n_features - n_informative) / 2;
    let cfg = SynthConfig {
        n_samples: 150,
        n_features,
        n_informative,
        n_redundant,
        n_classes,
        class_sep: 1.5,
        redundant_noise: 0.3,
        flip_y: 0.02,
        shuffle_features: true,
        seed,
    };
    normalize_dataset(&make_classification(&cfg)).0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Trees always store a structurally valid full binary array: the
    /// root exists, every internal node has two present children, every
    /// absent node has absent children, and labels are in range.
    #[test]
    fn tree_structure_invariants(
        seed in 1u64..50_000,
        c in 2usize..5,
        d in 2usize..10,
        depth in 1usize..6,
    ) {
        let ds = dataset(seed, c, d);
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = TreeConfig { max_depth: depth, ..TreeConfig::default() };
        let tree = DecisionTree::fit(&ds, &cfg, &mut rng);
        let nodes = tree.nodes();
        prop_assert_eq!(nodes.len(), (1usize << (depth + 1)) - 1);
        prop_assert!(!matches!(nodes[0], TreeNode::Absent));
        for (i, node) in nodes.iter().enumerate() {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            match node {
                TreeNode::Internal { feature, .. } => {
                    prop_assert!(*feature < d);
                    prop_assert!(l < nodes.len() && r < nodes.len(),
                        "internal node {i} at max depth");
                    prop_assert!(!matches!(nodes[l], TreeNode::Absent));
                    prop_assert!(!matches!(nodes[r], TreeNode::Absent));
                }
                TreeNode::Leaf { label } => prop_assert!(*label < c),
                TreeNode::Absent => {
                    if l < nodes.len() {
                        prop_assert!(matches!(nodes[l], TreeNode::Absent));
                        prop_assert!(matches!(nodes[r], TreeNode::Absent));
                    }
                }
            }
        }
    }

    /// Tree predictions equal the label of the leaf the decision path
    /// reaches, and training-set accuracy is at least majority-class.
    #[test]
    fn tree_prediction_consistency(seed in 1u64..50_000) {
        let ds = dataset(seed, 3, 6);
        let mut rng = StdRng::seed_from_u64(seed ^ 5);
        let tree = DecisionTree::fit(&ds, &TreeConfig::paper_dt(), &mut rng);
        let counts = ds.class_counts();
        let majority = *counts.iter().max().unwrap() as f64 / ds.n_samples() as f64;
        let acc = fia_models::accuracy(&tree, &ds.features, &ds.labels);
        prop_assert!(acc + 1e-9 >= majority, "acc {acc} < majority {majority}");
        for i in 0..10 {
            let path = tree.decision_path(ds.sample(i));
            let leaf = *path.last().unwrap();
            match tree.nodes()[leaf] {
                TreeNode::Leaf { label } => {
                    prop_assert_eq!(label, tree.predict_one(ds.sample(i)));
                }
                _ => prop_assert!(false, "path ended on non-leaf"),
            }
        }
    }

    /// Forest confidences are valid vote distributions with denominators
    /// equal to the tree count.
    #[test]
    fn forest_confidence_invariants(seed in 1u64..50_000, w in 1usize..12) {
        let ds = dataset(seed, 2, 5);
        let forest = RandomForest::fit(
            &ds,
            &ForestConfig { n_trees: w, seed, n_threads: 2, ..ForestConfig::default() },
        );
        let p = forest.predict_proba(&ds.features.select_rows(&[0, 1, 2]).unwrap());
        for i in 0..3 {
            let row = p.row(i);
            prop_assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            for &v in row {
                let k = v * w as f64;
                prop_assert!((k - k.round()).abs() < 1e-9, "vote {v} not a /{w} fraction");
            }
        }
    }

    /// LR persistence round-trips bit-exactly for arbitrary parameters.
    #[test]
    fn lr_persist_roundtrip(
        seed in 1u64..100_000,
        d in 1usize..8,
        c in 2usize..6,
    ) {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let w = Matrix::from_fn(d, c, |_, _| next());
        let bias: Vec<f64> = (0..c).map(|_| next()).collect();
        let model = LogisticRegression::from_parameters(w, bias, c);
        let restored = LogisticRegression::from_bytes(&model.to_bytes()).unwrap();
        prop_assert_eq!(restored.weights(), model.weights());
        prop_assert_eq!(restored.bias(), model.bias());
        prop_assert_eq!(restored.n_classes(), model.n_classes());
    }

    /// Tree persistence round-trips the full node array for arbitrary
    /// trained trees.
    #[test]
    fn tree_persist_roundtrip(seed in 1u64..50_000, depth in 1usize..6) {
        let ds = dataset(seed, 3, 6);
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = TreeConfig { max_depth: depth, ..TreeConfig::default() };
        let tree = DecisionTree::fit(&ds, &cfg, &mut rng);
        let restored = DecisionTree::from_bytes(&tree.to_bytes()).unwrap();
        prop_assert_eq!(restored.nodes(), tree.nodes());
    }

    /// Corrupting any single byte of a serialized tree either fails to
    /// decode or still decodes into a *structurally valid* tree — never a
    /// panic or an out-of-range label.
    #[test]
    fn tree_decode_never_panics_on_corruption(seed in 1u64..20_000, victim in 5usize..60) {
        let ds = dataset(seed, 2, 4);
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = TreeConfig { max_depth: 2, ..TreeConfig::default() };
        let tree = DecisionTree::fit(&ds, &cfg, &mut rng);
        let mut bytes = tree.to_bytes();
        let idx = victim % bytes.len();
        bytes[idx] ^= 0xFF;
        // Must not panic; success or a DecodeError are both acceptable,
        // and a success must still be in-range everywhere.
        if let Ok(t) = DecisionTree::from_bytes(&bytes) {
            for node in t.nodes() {
                if let TreeNode::Leaf { label } = node {
                    prop_assert!(*label < t.n_classes());
                }
            }
        }
    }
}
