//! Property tests on model invariants.
//!
//! Cases are driven by a seeded [`rand::rngs::StdRng`] sweep (the offline
//! build has no `proptest`); each case is reproducible from its index.

use fia_data::{make_classification, normalize_dataset, Dataset, SynthConfig};
use fia_linalg::Matrix;
use fia_models::{
    DecisionTree, ForestConfig, LogisticRegression, PredictProba, RandomForest, TreeConfig,
    TreeNode,
};
use rand::{rngs::StdRng, Rng, SeedableRng};

const CASES: u64 = 16;

fn case_rng(test: u64, case: u64) -> StdRng {
    StdRng::seed_from_u64(test.wrapping_mul(0x9E3779B97F4A7C15) ^ case)
}

fn dataset(seed: u64, n_classes: usize, n_features: usize) -> Dataset {
    let n_informative = (n_features * 2 / 3).max(1);
    let n_redundant = (n_features - n_informative) / 2;
    let cfg = SynthConfig {
        n_samples: 150,
        n_features,
        n_informative,
        n_redundant,
        n_classes,
        class_sep: 1.5,
        redundant_noise: 0.3,
        flip_y: 0.02,
        shuffle_features: true,
        seed,
    };
    normalize_dataset(&make_classification(&cfg)).0
}

/// Trees always store a structurally valid full binary array: the root
/// exists, every internal node has two present children, every absent
/// node has absent children, and labels are in range.
#[test]
fn tree_structure_invariants() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let seed: u64 = rng.gen_range(1..50_000u64);
        let c = rng.gen_range(2..5usize);
        let d = rng.gen_range(2..10usize);
        let depth = rng.gen_range(1..6usize);

        let ds = dataset(seed, c, d);
        let mut tree_rng = StdRng::seed_from_u64(seed);
        let cfg = TreeConfig {
            max_depth: depth,
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&ds, &cfg, &mut tree_rng);
        let nodes = tree.nodes();
        assert_eq!(nodes.len(), (1usize << (depth + 1)) - 1);
        assert!(!matches!(nodes[0], TreeNode::Absent));
        for (i, node) in nodes.iter().enumerate() {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            match node {
                TreeNode::Internal { feature, .. } => {
                    assert!(*feature < d);
                    assert!(
                        l < nodes.len() && r < nodes.len(),
                        "internal node {i} at max depth"
                    );
                    assert!(!matches!(nodes[l], TreeNode::Absent));
                    assert!(!matches!(nodes[r], TreeNode::Absent));
                }
                TreeNode::Leaf { label } => assert!(*label < c),
                TreeNode::Absent => {
                    if l < nodes.len() {
                        assert!(matches!(nodes[l], TreeNode::Absent));
                        assert!(matches!(nodes[r], TreeNode::Absent));
                    }
                }
            }
        }
    }
}

/// Tree predictions equal the label of the leaf the decision path
/// reaches, and training-set accuracy is at least majority-class.
#[test]
fn tree_prediction_consistency() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let seed: u64 = rng.gen_range(1..50_000u64);
        let ds = dataset(seed, 3, 6);
        let mut tree_rng = StdRng::seed_from_u64(seed ^ 5);
        let tree = DecisionTree::fit(&ds, &TreeConfig::paper_dt(), &mut tree_rng);
        let counts = ds.class_counts();
        let majority = *counts.iter().max().unwrap() as f64 / ds.n_samples() as f64;
        let acc = fia_models::accuracy(&tree, &ds.features, &ds.labels);
        assert!(acc + 1e-9 >= majority, "acc {acc} < majority {majority}");
        for i in 0..10 {
            let path = tree.decision_path(ds.sample(i));
            let leaf = *path.last().unwrap();
            match tree.nodes()[leaf] {
                TreeNode::Leaf { label } => {
                    assert_eq!(label, tree.predict_one(ds.sample(i)));
                }
                _ => panic!("path ended on non-leaf"),
            }
        }
    }
}

/// Forest confidences are valid vote distributions with denominators
/// equal to the tree count.
#[test]
fn forest_confidence_invariants() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        let seed: u64 = rng.gen_range(1..50_000u64);
        let w = rng.gen_range(1..12usize);

        let ds = dataset(seed, 2, 5);
        let forest = RandomForest::fit(
            &ds,
            &ForestConfig {
                n_trees: w,
                seed,
                n_threads: 2,
                ..ForestConfig::default()
            },
        );
        let p = forest.predict_proba(&ds.features.select_rows(&[0, 1, 2]).unwrap());
        for i in 0..3 {
            let row = p.row(i);
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            for &v in row {
                let k = v * w as f64;
                assert!((k - k.round()).abs() < 1e-9, "vote {v} not a /{w} fraction");
            }
        }
    }
}

/// LR persistence round-trips bit-exactly for arbitrary parameters.
#[test]
fn lr_persist_roundtrip() {
    for case in 0..CASES {
        let mut rng = case_rng(4, case);
        let seed: u64 = rng.gen_range(1..100_000u64);
        let d = rng.gen_range(1..8usize);
        let c = rng.gen_range(2..6usize);

        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let w = Matrix::from_fn(d, c, |_, _| next());
        let bias: Vec<f64> = (0..c).map(|_| next()).collect();
        let model = LogisticRegression::from_parameters(w, bias, c);
        let restored = LogisticRegression::from_bytes(&model.to_bytes()).unwrap();
        assert_eq!(restored.weights(), model.weights());
        assert_eq!(restored.bias(), model.bias());
        assert_eq!(restored.n_classes(), model.n_classes());
    }
}

/// Tree persistence round-trips the full node array for arbitrary
/// trained trees.
#[test]
fn tree_persist_roundtrip() {
    for case in 0..CASES {
        let mut rng = case_rng(5, case);
        let seed: u64 = rng.gen_range(1..50_000u64);
        let depth = rng.gen_range(1..6usize);

        let ds = dataset(seed, 3, 6);
        let mut tree_rng = StdRng::seed_from_u64(seed);
        let cfg = TreeConfig {
            max_depth: depth,
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&ds, &cfg, &mut tree_rng);
        let restored = DecisionTree::from_bytes(&tree.to_bytes()).unwrap();
        assert_eq!(restored.nodes(), tree.nodes());
    }
}

/// Corrupting any single byte of a serialized tree either fails to
/// decode or still decodes into a *structurally valid* tree — never a
/// panic or an out-of-range label.
#[test]
fn tree_decode_never_panics_on_corruption() {
    for case in 0..CASES {
        let mut rng = case_rng(6, case);
        let seed: u64 = rng.gen_range(1..20_000u64);
        let victim = rng.gen_range(5..60usize);

        let ds = dataset(seed, 2, 4);
        let mut tree_rng = StdRng::seed_from_u64(seed);
        let cfg = TreeConfig {
            max_depth: 2,
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&ds, &cfg, &mut tree_rng);
        let mut bytes = tree.to_bytes();
        let idx = victim % bytes.len();
        bytes[idx] ^= 0xFF;
        // Must not panic; success or a DecodeError are both acceptable,
        // and a success must still be in-range everywhere.
        if let Ok(t) = DecisionTree::from_bytes(&bytes) {
            for node in t.nodes() {
                if let TreeNode::Leaf { label } = node {
                    assert!(*label < t.n_classes());
                }
            }
        }
    }
}
