//! Threat-model configuration (Section III-B).
//!
//! Semi-honest parties; the active party, possibly colluding with a
//! subset of passive parties, forms the adversary `P_adv`; the remaining
//! passive parties form the attack target `P_target`. The strongest
//! configuration is `m − 1` colluding parties against one target — which
//! is also the two-party case.

use crate::partition::VerticalPartition;
use crate::party::PartyId;
use crate::system::{PredictionRecord, VflSystem};
use fia_linalg::Matrix;
use fia_models::PredictProba;

/// Which parties are on the adversary's side.
#[derive(Debug, Clone)]
pub struct ThreatModel {
    /// The adversary coalition (must include the active party).
    pub adversary_parties: Vec<PartyId>,
}

impl ThreatModel {
    /// The standard setting: the active party (P1) attacks alone — in the
    /// two-party deployment this is already the strongest adversary.
    pub fn active_only() -> Self {
        ThreatModel {
            adversary_parties: vec![PartyId(0)],
        }
    }

    /// The active party plus the given colluding passive parties.
    pub fn with_colluders(colluders: &[PartyId]) -> Self {
        let mut parties = vec![PartyId(0)];
        parties.extend_from_slice(colluders);
        parties.sort_unstable();
        parties.dedup();
        ThreatModel {
            adversary_parties: parties,
        }
    }

    /// Splits the global feature indices into `(adversary, target)` under
    /// this coalition.
    pub fn feature_split(&self, partition: &VerticalPartition) -> (Vec<usize>, Vec<usize>) {
        let adv = partition.union_features(&self.adversary_parties);
        let target: Vec<usize> = (0..partition.n_features())
            .filter(|f| adv.binary_search(f).is_err())
            .collect();
        (adv, target)
    }
}

/// Everything the adversary controls at attack time — the inputs of
/// Eqn (2): `x̂_target = A(x_adv, v, θ)`, accumulated over the whole
/// prediction dataset.
#[derive(Debug, Clone)]
pub struct AdversaryView {
    /// Global feature indices owned by the adversary coalition.
    pub adv_indices: Vec<usize>,
    /// Global feature indices owned by the attack target.
    pub target_indices: Vec<usize>,
    /// The adversary's feature values, one row per predicted sample
    /// (`n × d_adv`).
    pub x_adv: Matrix,
    /// The revealed confidence scores (`n × c`).
    pub confidences: Matrix,
}

impl AdversaryView {
    /// Collects the view by running the prediction protocol on every
    /// sample of `system` under `threat`.
    pub fn collect<M: PredictProba>(system: &VflSystem<M>, threat: &ThreatModel) -> Self {
        let (adv_indices, target_indices) = threat.feature_split(system.partition());
        let records: Vec<PredictionRecord> = system.predict_all();
        Self::from_records(system, threat, &records, adv_indices, target_indices)
    }

    fn from_records<M: PredictProba>(
        system: &VflSystem<M>,
        threat: &ThreatModel,
        records: &[PredictionRecord],
        adv_indices: Vec<usize>,
        target_indices: Vec<usize>,
    ) -> Self {
        let n = records.len();
        let c = system.model().n_classes();
        // The coalition's feature values: concatenate each member party's
        // slice in global-index order. The active party's records carry
        // only its own slice, so colluders re-contribute theirs here.
        let partition = system.partition();
        let mut x_adv = Matrix::zeros(n, adv_indices.len());
        let mut confidences = Matrix::zeros(n, c);
        for (i, r) in records.iter().enumerate() {
            confidences.row_mut(i).copy_from_slice(&r.confidence);
            // Build a sparse view of the coalition's global values.
            let mut global: Vec<Option<f64>> = vec![None; partition.n_features()];
            // Active party slice.
            let active_feats = partition.features_of(system.active_party().id);
            for (&f, &v) in active_feats.iter().zip(r.x_adv.iter()) {
                global[f] = Some(v);
            }
            // Colluding passive parties contribute their local rows.
            for &pid in &threat.adversary_parties {
                if pid == system.active_party().id {
                    continue;
                }
                let feats = partition.features_of(pid);
                // Safe: system rows are aligned.
                let slice = system_party_row(system, pid, r.sample_index);
                for (&f, &v) in feats.iter().zip(slice.iter()) {
                    global[f] = Some(v);
                }
            }
            for (k, &f) in adv_indices.iter().enumerate() {
                x_adv[(i, k)] = global[f].expect("coalition owns this feature");
            }
        }
        AdversaryView {
            adv_indices,
            target_indices,
            x_adv,
            confidences,
        }
    }

    /// Number of accumulated predictions `n`.
    pub fn n_samples(&self) -> usize {
        self.x_adv.rows()
    }

    /// `d_target` — the unknowns the attack must reconstruct per sample.
    pub fn d_target(&self) -> usize {
        self.target_indices.len()
    }
}

fn system_party_row<M: PredictProba>(system: &VflSystem<M>, pid: PartyId, row: usize) -> &[f64] {
    // The partition guarantees pid is valid; VflSystem keeps parties in
    // id order by construction.
    system.parties()[pid.0].features_for_row(row)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fia_models::LogisticRegression;

    fn toy_system(m_sizes: &[usize]) -> VflSystem<LogisticRegression> {
        let d: usize = m_sizes.iter().sum();
        let w = Matrix::from_fn(d, 1, |i, _| 0.2 + 0.1 * i as f64);
        let model = LogisticRegression::from_parameters(w, vec![0.0], 2);
        let partition = VerticalPartition::contiguous(m_sizes);
        let global = Matrix::from_fn(6, d, |i, j| ((i * d + j) % 7) as f64 / 7.0);
        VflSystem::from_global(model, partition, &global)
    }

    #[test]
    fn feature_split_active_only() {
        let sys = toy_system(&[2, 3]);
        let tm = ThreatModel::active_only();
        let (adv, target) = tm.feature_split(sys.partition());
        assert_eq!(adv, vec![0, 1]);
        assert_eq!(target, vec![2, 3, 4]);
    }

    #[test]
    fn feature_split_with_colluders() {
        let sys = toy_system(&[2, 2, 2]);
        let tm = ThreatModel::with_colluders(&[PartyId(2)]);
        let (adv, target) = tm.feature_split(sys.partition());
        assert_eq!(adv, vec![0, 1, 4, 5]);
        assert_eq!(target, vec![2, 3]);
    }

    #[test]
    fn adversary_view_collects_correct_columns() {
        let sys = toy_system(&[2, 3]);
        let tm = ThreatModel::active_only();
        let view = AdversaryView::collect(&sys, &tm);
        assert_eq!(view.n_samples(), 6);
        assert_eq!(view.d_target(), 3);
        assert_eq!(view.x_adv.cols(), 2);
        assert_eq!(view.confidences.cols(), 2);
        // x_adv matches the global columns 0..2.
        let global = Matrix::from_fn(6, 5, |i, j| ((i * 5 + j) % 7) as f64 / 7.0);
        for i in 0..6 {
            assert_eq!(view.x_adv[(i, 0)], global[(i, 0)]);
            assert_eq!(view.x_adv[(i, 1)], global[(i, 1)]);
        }
    }

    #[test]
    fn colluding_view_includes_passive_columns() {
        let sys = toy_system(&[2, 2, 2]);
        let tm = ThreatModel::with_colluders(&[PartyId(1)]);
        let view = AdversaryView::collect(&sys, &tm);
        assert_eq!(view.adv_indices, vec![0, 1, 2, 3]);
        assert_eq!(view.d_target(), 2);
        let global = Matrix::from_fn(6, 6, |i, j| ((i * 6 + j) % 7) as f64 / 7.0);
        for i in 0..6 {
            for k in 0..4 {
                assert_eq!(view.x_adv[(i, k)], global[(i, k)]);
            }
        }
    }

    #[test]
    fn dedups_and_sorts_coalition() {
        let tm = ThreatModel::with_colluders(&[PartyId(2), PartyId(2), PartyId(1)]);
        assert_eq!(
            tm.adversary_parties,
            vec![PartyId(0), PartyId(1), PartyId(2)]
        );
    }
}
