//! Parties and their private feature columns.

use fia_linalg::Matrix;

/// Identifier of a participating party (`P₁ … P_m` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PartyId(pub usize);

impl std::fmt::Display for PartyId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.0 + 1)
    }
}

/// One participant holding a private vertical slice of the dataset.
///
/// The *active* party additionally owns the labels and initiates
/// prediction requests; *passive* parties only contribute features.
#[derive(Debug, Clone)]
pub struct Party {
    /// This party's identifier.
    pub id: PartyId,
    /// Global feature indices this party owns.
    pub feature_indices: Vec<usize>,
    /// Local data: one column per owned feature, rows aligned with the
    /// global sample order (post-PSI).
    pub local_data: Matrix,
    /// Sample identifiers this party knows (pre-alignment).
    pub sample_ids: Vec<u64>,
    /// `true` for the label-owning active party.
    pub is_active: bool,
}

impl Party {
    /// Creates a party from the global feature matrix by extracting its
    /// columns.
    pub fn from_global(
        id: PartyId,
        global: &Matrix,
        feature_indices: Vec<usize>,
        sample_ids: Vec<u64>,
        is_active: bool,
    ) -> Self {
        assert_eq!(global.rows(), sample_ids.len(), "sample id count mismatch");
        let local_data = global
            .select_columns(&feature_indices)
            .expect("feature indices in range");
        Party {
            id,
            feature_indices,
            local_data,
            sample_ids,
            is_active,
        }
    }

    /// Number of features `d_i` this party contributes.
    pub fn n_features(&self) -> usize {
        self.feature_indices.len()
    }

    /// This party's feature values for the local row `row` (the slice the
    /// prediction protocol feeds into the joint computation).
    pub fn features_for_row(&self, row: usize) -> &[f64] {
        self.local_data.row(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_global_extracts_columns() {
        let global = Matrix::from_fn(3, 4, |i, j| (i * 4 + j) as f64);
        let p = Party::from_global(PartyId(1), &global, vec![3, 0], vec![10, 11, 12], false);
        assert_eq!(p.n_features(), 2);
        assert_eq!(p.features_for_row(1), &[7.0, 4.0]);
        assert!(!p.is_active);
    }

    #[test]
    fn display_is_one_based() {
        assert_eq!(PartyId(0).to_string(), "P1");
        assert_eq!(PartyId(2).to_string(), "P3");
    }

    #[test]
    #[should_panic(expected = "sample id count")]
    fn mismatched_ids_panic() {
        let global = Matrix::zeros(3, 2);
        Party::from_global(PartyId(0), &global, vec![0], vec![1, 2], true);
    }
}
