//! Simulated privacy-preserving federated training for logistic
//! regression.
//!
//! The paper assumes model training is protected by MPC/PHE so that "no
//! intermediate information during the computation is disclosed" and only
//! the final model is released (Sections II-B, VI-A — the evaluation then
//! trains centrally and hands the model to the adversary). This module
//! reproduces the *interface* of such a protocol over the party
//! abstraction:
//!
//! * each party keeps its feature slice and its weight block locally;
//! * per-sample partial scores `z_p = x_p · W_p` are combined by a
//!   simulated secure aggregation (the only cross-party operation);
//! * the active party holds the labels and computes the residuals
//!   `softmax(z) − y`, which are returned to each party for its local
//!   gradient `x_pᵀ · residual` — the standard VFL-SGD decomposition;
//! * an [`TrainingAudit`] records exactly which aggregate quantities
//!   crossed party boundaries, so tests can assert nothing else did.
//!
//! Compared to centralized training the produced model is the same
//! *family* (multinomial LR trained by mini-batch gradient descent); the
//! attacks are agnostic to which path produced `θ`.

use crate::partition::VerticalPartition;
use crate::party::PartyId;
use fia_linalg::vecops::softmax;
use fia_linalg::Matrix;
use fia_models::LogisticRegression;
use rand::seq::SliceRandom;
use rand::{rngs::StdRng, SeedableRng};

/// Configuration for [`train_federated_lr`].
#[derive(Debug, Clone)]
pub struct FederatedLrConfig {
    /// Epochs of mini-batch gradient descent.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f64,
    /// L2 regularization coefficient.
    pub l2: f64,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for FederatedLrConfig {
    fn default() -> Self {
        FederatedLrConfig {
            epochs: 60,
            batch_size: 64,
            lr: 0.5,
            l2: 1e-4,
            seed: 0,
        }
    }
}

/// What crossed party boundaries during training — the simulated
/// protocol's disclosure ledger.
#[derive(Debug, Clone, Default)]
pub struct TrainingAudit {
    /// Number of secure score aggregations performed (one per batch).
    pub secure_aggregations: usize,
    /// Number of residual vectors broadcast back to passive parties.
    pub residual_broadcasts: usize,
    /// `true` — structurally guaranteed by the implementation — when no
    /// raw feature value was ever exposed to another party.
    pub raw_features_disclosed: bool,
}

/// Trains multinomial (or binary, as 2-column softmax) logistic
/// regression over vertically partitioned data without any party seeing
/// another's raw features.
///
/// `features_per_party[p]` is party `p`'s local column block (aligned
/// rows); `labels` lives with the active party (party 0 by convention).
/// Returns the assembled global model — which the protocol releases to
/// every party, exactly the artifact the paper's adversary starts from —
/// plus the disclosure audit.
pub fn train_federated_lr(
    partition: &VerticalPartition,
    features_per_party: &[Matrix],
    labels: &[usize],
    n_classes: usize,
    config: &FederatedLrConfig,
) -> (LogisticRegression, TrainingAudit) {
    assert_eq!(
        features_per_party.len(),
        partition.n_parties(),
        "one feature block per party"
    );
    let n = labels.len();
    for (p, block) in features_per_party.iter().enumerate() {
        assert_eq!(block.rows(), n, "party {p} row count mismatch");
        assert_eq!(
            block.cols(),
            partition.features_of(PartyId(p)).len(),
            "party {p} width disagrees with partition"
        );
    }
    assert!(n_classes >= 2, "need at least two classes");

    // Local state: one weight block per party (d_p × c), bias with the
    // active party.
    let c = n_classes;
    let mut blocks: Vec<Matrix> = features_per_party
        .iter()
        .map(|b| Matrix::zeros(b.cols(), c))
        .collect();
    let mut bias = vec![0.0; c];
    let mut audit = TrainingAudit::default();

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut order: Vec<usize> = (0..n).collect();

    for _ in 0..config.epochs {
        order.shuffle(&mut rng);
        for chunk in order.chunks(config.batch_size.max(1)) {
            // Phase 1: each party computes partial scores on its slice.
            // (Locally; only the SUM is revealed, via "secure" addition.)
            let partials: Vec<Matrix> = blocks
                .iter()
                .zip(features_per_party.iter())
                .map(|(w, x)| {
                    let xb = x.select_rows(chunk).expect("rows in range");
                    xb.matmul(w).expect("block shapes agree")
                })
                .collect();
            let mut z = partials[0].clone();
            for p in &partials[1..] {
                z = z.add(p).expect("same batch shape");
            }
            audit.secure_aggregations += 1;

            // Phase 2: the active party turns aggregated scores into
            // residuals using its private labels.
            let mut residual = Matrix::zeros(chunk.len(), c);
            for (bi, &row) in chunk.iter().enumerate() {
                let mut logits = z.row(bi).to_vec();
                for (k, l) in logits.iter_mut().enumerate() {
                    *l += bias[k];
                }
                let probs = softmax(&logits);
                for k in 0..c {
                    let y = if labels[row] == k { 1.0 } else { 0.0 };
                    residual[(bi, k)] = (probs[k] - y) / chunk.len() as f64;
                }
            }
            audit.residual_broadcasts += 1;

            // Phase 3: each party updates its block from the broadcast
            // residual and its own features; the active party updates the
            // bias.
            for (w, x) in blocks.iter_mut().zip(features_per_party.iter()) {
                let xb = x.select_rows(chunk).expect("rows in range");
                let grad = xb.transpose().matmul(&residual).expect("shapes agree");
                let reg = w.scale(config.l2);
                let step = grad.add(&reg).expect("same shape").scale(config.lr);
                *w = w.sub(&step).expect("same shape");
            }
            for k in 0..c {
                let g: f64 = (0..chunk.len()).map(|bi| residual[(bi, k)]).sum();
                bias[k] -= config.lr * g;
            }
        }
    }

    // Model release: assemble the global weight matrix in global feature
    // order (this is the step that ends the training privacy boundary).
    let d = partition.n_features();
    let mut weights = Matrix::zeros(d, c);
    for (p, block) in blocks.iter().enumerate() {
        for (local, &global) in partition.features_of(PartyId(p)).iter().enumerate() {
            for k in 0..c {
                weights[(global, k)] = block[(local, k)];
            }
        }
    }
    let model = LogisticRegression::from_parameters(weights, bias, c);
    (model, audit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fia_data::{PaperDataset, SplitSpec};
    use fia_models::{accuracy, PredictProba};

    fn setup() -> (
        VerticalPartition,
        Vec<Matrix>,
        fia_data::Dataset,
        fia_data::Dataset,
    ) {
        let ds = PaperDataset::CreditCard.generate(0.01, 19);
        let split = ds.split(&SplitSpec::paper_default(), 19);
        let partition = VerticalPartition::two_block_random(ds.n_features(), 0.4, 19);
        let blocks = partition.split_matrix(&split.train.features);
        (partition, blocks, split.train, split.test)
    }

    #[test]
    fn federated_training_learns() {
        let (partition, blocks, train, test) = setup();
        let (model, _) = train_federated_lr(
            &partition,
            &blocks,
            &train.labels,
            train.n_classes,
            &FederatedLrConfig::default(),
        );
        let acc = accuracy(&model, &test.features, &test.labels);
        assert!(acc > 0.7, "federated LR test accuracy {acc}");
    }

    #[test]
    fn audit_counts_protocol_rounds() {
        let (partition, blocks, train, _) = setup();
        let cfg = FederatedLrConfig {
            epochs: 2,
            batch_size: 32,
            ..Default::default()
        };
        let (_, audit) =
            train_federated_lr(&partition, &blocks, &train.labels, train.n_classes, &cfg);
        let batches_per_epoch = train.n_samples().div_ceil(32);
        assert_eq!(audit.secure_aggregations, 2 * batches_per_epoch);
        assert_eq!(audit.residual_broadcasts, audit.secure_aggregations);
        assert!(!audit.raw_features_disclosed);
    }

    #[test]
    fn released_model_matches_assembled_blocks() {
        // The global model's prediction equals the sum of per-party
        // partial scores — i.e. assembly preserved the block structure.
        let (partition, blocks, train, _) = setup();
        let cfg = FederatedLrConfig {
            epochs: 3,
            ..Default::default()
        };
        let (model, _) =
            train_federated_lr(&partition, &blocks, &train.labels, train.n_classes, &cfg);
        // Pick a row; compute the score via the released model and via
        // manual per-party recomposition.
        let x = train.features.select_rows(&[0]).unwrap();
        let z_model = model.decision_function(&x);
        let mut z_manual = [0.0; 2];
        for (p, block) in partition.split_matrix(&x).iter().enumerate() {
            let w = model
                .weights()
                .select_rows(partition.features_of(PartyId(p)))
                .unwrap();
            let part = block.matmul(&w).unwrap();
            for k in 0..2 {
                z_manual[k] += part[(0, k)];
            }
        }
        for k in 0..2 {
            z_manual[k] += model.bias()[k];
            assert!((z_manual[k] - z_model[(0, k)]).abs() < 1e-10);
        }
    }

    #[test]
    fn three_party_training_works() {
        let ds = PaperDataset::BankMarketing.generate(0.01, 23);
        let split = ds.split(&SplitSpec::paper_default(), 23);
        let partition = VerticalPartition::contiguous(&[8, 6, 6]);
        let blocks = partition.split_matrix(&split.train.features);
        let (model, audit) = train_federated_lr(
            &partition,
            &blocks,
            &split.train.labels,
            split.train.n_classes,
            &FederatedLrConfig::default(),
        );
        assert_eq!(model.n_features(), 20);
        assert!(audit.secure_aggregations > 0);
        let acc = accuracy(&model, &split.test.features, &split.test.labels);
        assert!(acc > 0.6, "3-party accuracy {acc}");
    }

    #[test]
    #[should_panic(expected = "row count mismatch")]
    fn misaligned_blocks_rejected() {
        let (partition, mut blocks, train, _) = setup();
        blocks[0] = Matrix::zeros(3, blocks[0].cols());
        train_federated_lr(
            &partition,
            &blocks,
            &train.labels,
            train.n_classes,
            &FederatedLrConfig::default(),
        );
    }
}
