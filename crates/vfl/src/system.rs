//! The joint prediction protocol.
//!
//! `VflSystem` wires the trained model, the feature partition and the
//! parties together and enforces the paper's information interface: a
//! prediction request reveals to the active party exactly the confidence
//! vector `v` — nothing else crosses party boundaries in the clear. The
//! audit trail records every revelation so tests can assert the protocol
//! leaked nothing beyond `(sample id, v)` pairs.

use crate::partition::VerticalPartition;
use crate::party::{Party, PartyId};
use fia_linalg::Matrix;
use fia_models::PredictProba;
use std::sync::Arc;

/// One entry of the active party's accumulated observation log — exactly
/// the training data GRNA uses (Section V: "the active party can easily
/// collect this information by observing model predictions … in the long
/// term").
#[derive(Debug, Clone)]
pub struct PredictionRecord {
    /// Joint sample index (into the aligned prediction dataset).
    pub sample_index: usize,
    /// The adversary's own feature values for this sample.
    pub x_adv: Vec<f64>,
    /// The revealed confidence-score vector `v`.
    pub confidence: Vec<f64>,
}

/// The immutable deployment state every replica of a served system
/// shares: the trained model, the feature partition and the parties'
/// aligned tables. Prediction never mutates any of it, which is what
/// makes replica cloning an `Arc` bump instead of a data copy.
struct SystemState<M: PredictProba> {
    model: M,
    partition: VerticalPartition,
    parties: Vec<Party>,
}

/// A deployed vertical FL system holding a trained model.
///
/// The state behind a system is reference-counted and read-only:
/// [`Clone`] produces a *replica* sharing the same model, partition and
/// party tables in O(1) — no feature data is copied. A serving stack can
/// therefore hand each of its backend threads its own `VflSystem` handle
/// (one replica per batcher) while the deployment exists in memory once.
pub struct VflSystem<M: PredictProba> {
    state: Arc<SystemState<M>>,
}

/// Replica cloning: an `Arc` bump sharing the read-only deployment
/// state, regardless of whether the model type is itself `Clone`.
impl<M: PredictProba> Clone for VflSystem<M> {
    fn clone(&self) -> Self {
        VflSystem {
            state: Arc::clone(&self.state),
        }
    }
}

impl<M: PredictProba> VflSystem<M> {
    /// Assembles a system. The parties' local tables must already be
    /// PSI-aligned (same row ↔ same sample).
    ///
    /// # Panics
    /// Panics if the party count, feature assignment or model width are
    /// inconsistent.
    pub fn new(model: M, partition: VerticalPartition, parties: Vec<Party>) -> Self {
        assert_eq!(parties.len(), partition.n_parties(), "party count mismatch");
        assert_eq!(
            model.n_features(),
            partition.n_features(),
            "model width mismatch"
        );
        let n = parties
            .first()
            .map(|p| p.local_data.rows())
            .unwrap_or_default();
        for p in &parties {
            assert_eq!(p.local_data.rows(), n, "parties must be row-aligned");
            assert_eq!(
                p.feature_indices,
                partition.features_of(p.id),
                "party features disagree with partition"
            );
        }
        assert_eq!(
            parties.iter().filter(|p| p.is_active).count(),
            1,
            "exactly one active party"
        );
        VflSystem {
            state: Arc::new(SystemState {
                model,
                partition,
                parties,
            }),
        }
    }

    /// `true` when `other` is a replica of this system (both handles
    /// share the same read-only deployment state).
    pub fn shares_state_with(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.state, &other.state)
    }

    /// Convenience constructor: splits a global prediction matrix into
    /// parties per `partition`, with party 0 active.
    pub fn from_global(model: M, partition: VerticalPartition, global: &Matrix) -> Self {
        let ids: Vec<u64> = (0..global.rows() as u64).collect();
        let parties = (0..partition.n_parties())
            .map(|p| {
                Party::from_global(
                    PartyId(p),
                    global,
                    partition.features_of(PartyId(p)).to_vec(),
                    ids.clone(),
                    p == 0,
                )
            })
            .collect();
        VflSystem::new(model, partition, parties)
    }

    /// Number of aligned samples available for prediction.
    pub fn n_samples(&self) -> usize {
        self.state
            .parties
            .first()
            .map(|p| p.local_data.rows())
            .unwrap_or_default()
    }

    /// The trained model (released to all parties in the threat model).
    pub fn model(&self) -> &M {
        &self.state.model
    }

    /// The feature partition (public metadata: the active party knows the
    /// passive parties' feature names/count — Section III-B).
    pub fn partition(&self) -> &VerticalPartition {
        &self.state.partition
    }

    /// All parties in id order (crate-internal: the threat-model module
    /// uses this to let colluding parties contribute their columns).
    pub(crate) fn parties(&self) -> &[Party] {
        &self.state.parties
    }

    /// The active party.
    pub fn active_party(&self) -> &Party {
        self.state
            .parties
            .iter()
            .find(|p| p.is_active)
            .expect("constructor guarantees one active party")
    }

    /// Runs the joint prediction protocol for one sample: every party
    /// contributes its slice, the model is evaluated "securely" and only
    /// `v` is returned. Thin wrapper over a 1-query
    /// [`VflSystem::predict_batch`] round.
    pub fn predict(&self, sample_index: usize) -> Vec<f64> {
        self.predict_batch(&[sample_index]).row(0).to_vec()
    }

    /// Runs *one* protocol round answering `n` queries at once: every
    /// party contributes its feature block for all requested samples, the
    /// model is evaluated on the assembled `n × d` matrix, and the
    /// `n × c` confidence matrix is revealed to the active party.
    ///
    /// This is the scale-path of the system — per-query protocol
    /// overhead (slice assembly, model dispatch) is paid once per round
    /// instead of once per sample — and mirrors how production serving
    /// stacks amortize traffic. Internally this gathers each party's
    /// stored rows and delegates to the one protocol implementation,
    /// [`VflSystem::predict_features_batch`].
    ///
    /// # Panics
    /// Panics when any sample index is out of range.
    pub fn predict_batch(&self, sample_indices: &[usize]) -> Matrix {
        self.predict_features_batch(&self.party_slices(sample_indices))
    }

    /// Gathers every party's stored feature rows for `sample_indices`,
    /// one `n × d_p` block per party in id order — the contribution each
    /// party would feed into a joint prediction round for those samples.
    ///
    /// # Panics
    /// Panics when any sample index is out of range.
    pub fn party_slices(&self, sample_indices: &[usize]) -> Vec<Matrix> {
        let n_samples = self.n_samples();
        for &i in sample_indices {
            assert!(i < n_samples, "sample index out of range");
        }
        self.state
            .parties
            .iter()
            .map(|party| {
                let mut block = Matrix::zeros(sample_indices.len(), party.n_features());
                for (row, &sample) in sample_indices.iter().enumerate() {
                    block
                        .row_mut(row)
                        .copy_from_slice(party.features_for_row(sample));
                }
                block
            })
            .collect()
    }

    /// Runs one protocol round on *ad-hoc* query inputs: `slices[p]` is
    /// party `p`'s raw feature block (`n × d_p`, columns ordered per that
    /// party's `feature_indices`) for `n` samples the system has never
    /// stored. This is the serving path — a deployed prediction API must
    /// answer unseen queries, not just replay the aligned prediction set —
    /// and it is the *single* protocol implementation:
    /// [`VflSystem::predict_batch`] delegates here after gathering stored
    /// rows.
    ///
    /// Each party scatters its columns into the joint matrix, the model
    /// is evaluated once on the assembled `n × d` batch, and only the
    /// `n × c` confidence matrix crosses the party boundary.
    ///
    /// # Panics
    /// Panics when the slice count, any block's width, or the row counts
    /// are inconsistent with the partition.
    pub fn predict_features_batch(&self, slices: &[Matrix]) -> Matrix {
        assert_eq!(
            slices.len(),
            self.state.parties.len(),
            "one feature block per party"
        );
        let n = slices.first().map(|s| s.rows()).unwrap_or_default();
        for (party, block) in self.state.parties.iter().zip(slices) {
            assert_eq!(
                block.cols(),
                party.n_features(),
                "feature block width mismatch for {}",
                party.id
            );
            assert_eq!(block.rows(), n, "feature blocks must be row-aligned");
        }
        // The batched analogue of `partition.assemble` on one row.
        let mut joint = Matrix::zeros(n, self.state.partition.n_features());
        for (party, block) in self.state.parties.iter().zip(slices) {
            for row in 0..n {
                let slice = block.row(row);
                let out = joint.row_mut(row);
                for (&f, &v) in party.feature_indices.iter().zip(slice.iter()) {
                    out[f] = v;
                }
            }
        }
        self.state.model.predict_proba(&joint)
    }

    /// Runs the protocol over every sample, returning the active party's
    /// observation log: its own feature slices paired with the revealed
    /// confidence vectors. This is the *complete* adversary-visible
    /// output of the prediction phase. Internally a single batched
    /// protocol round ([`VflSystem::predict_batch`]).
    pub fn predict_all(&self) -> Vec<PredictionRecord> {
        let indices: Vec<usize> = (0..self.n_samples()).collect();
        let confidences = self.predict_batch(&indices);
        let active = self.active_party();
        indices
            .into_iter()
            .map(|i| PredictionRecord {
                sample_index: i,
                x_adv: active.features_for_row(i).to_vec(),
                confidence: confidences.row(i).to_vec(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fia_models::LogisticRegression;

    fn toy_system() -> VflSystem<LogisticRegression> {
        // 4 features, 3 classes, weights chosen arbitrarily.
        let w = Matrix::from_fn(4, 3, |i, j| 0.1 * (i as f64 + 1.0) - 0.05 * j as f64);
        let model = LogisticRegression::from_parameters(w, vec![0.0, 0.1, -0.1], 3);
        let partition = VerticalPartition::contiguous(&[2, 2]);
        let global = Matrix::from_fn(5, 4, |i, j| ((i + j) % 3) as f64 * 0.3);
        VflSystem::from_global(model, partition, &global)
    }

    #[test]
    fn predict_matches_centralized_model() {
        let sys = toy_system();
        let global = Matrix::from_fn(5, 4, |i, j| ((i + j) % 3) as f64 * 0.3);
        let central = sys.model().predict_proba(&global);
        for i in 0..5 {
            let v = sys.predict(i);
            for (j, &vj) in v.iter().enumerate() {
                assert!((vj - central[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn records_contain_only_adv_features_and_v() {
        let sys = toy_system();
        let records = sys.predict_all();
        assert_eq!(records.len(), 5);
        for r in &records {
            // Active party owns features {0, 1} → x_adv has width 2.
            assert_eq!(r.x_adv.len(), 2);
            assert_eq!(r.confidence.len(), 3);
            let s: f64 = r.confidence.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn batch_round_matches_per_sample_protocol() {
        let sys = toy_system();
        let batch = sys.predict_batch(&[4, 0, 2]);
        assert_eq!(batch.shape(), (3, 3));
        for (row, &i) in [4usize, 0, 2].iter().enumerate() {
            let single = sys.predict(i);
            for (j, &v) in single.iter().enumerate() {
                assert!((batch[(row, j)] - v).abs() < 1e-15);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn batch_round_checks_indices() {
        toy_system().predict_batch(&[0, 99]);
    }

    #[test]
    fn ad_hoc_feature_round_matches_centralized_model() {
        // Unseen queries: rows the stored prediction set does not contain.
        let sys = toy_system();
        let global = Matrix::from_fn(3, 4, |i, j| 0.11 * (i + 1) as f64 + 0.07 * j as f64);
        let slices = vec![
            global.select_columns(&[0, 1]).unwrap(),
            global.select_columns(&[2, 3]).unwrap(),
        ];
        let served = sys.predict_features_batch(&slices);
        let central = sys.model().predict_proba(&global);
        assert_eq!(served.shape(), (3, 3));
        assert!(served.max_abs_diff(&central).unwrap() < 1e-15);
    }

    #[test]
    fn stored_batch_delegates_to_feature_round() {
        let sys = toy_system();
        let indices = [4usize, 0, 2];
        let via_indices = sys.predict_batch(&indices);
        let via_slices = sys.predict_features_batch(&sys.party_slices(&indices));
        assert_eq!(via_indices, via_slices);
    }

    #[test]
    fn party_slices_gather_local_rows() {
        let sys = toy_system();
        let slices = sys.party_slices(&[1, 3]);
        assert_eq!(slices.len(), 2);
        for (party, block) in [0usize, 1].into_iter().zip(&slices) {
            assert_eq!(block.shape(), (2, 2));
            assert_eq!(block.row(0), sys.parties()[party].features_for_row(1));
            assert_eq!(block.row(1), sys.parties()[party].features_for_row(3));
        }
    }

    #[test]
    #[should_panic(expected = "one feature block per party")]
    fn feature_round_checks_party_count() {
        let sys = toy_system();
        sys.predict_features_batch(&[Matrix::zeros(1, 2)]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn feature_round_checks_block_widths() {
        let sys = toy_system();
        sys.predict_features_batch(&[Matrix::zeros(1, 3), Matrix::zeros(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "row-aligned")]
    fn feature_round_checks_row_alignment() {
        let sys = toy_system();
        sys.predict_features_batch(&[Matrix::zeros(2, 2), Matrix::zeros(1, 2)]);
    }

    #[test]
    fn replica_clone_shares_state_and_predicts_identically() {
        let sys = toy_system();
        let replica = sys.clone();
        assert!(sys.shares_state_with(&replica), "clone must share state");
        assert!(
            std::ptr::eq(sys.model(), replica.model()),
            "model must not be copied"
        );
        let indices = [0usize, 3, 1];
        assert_eq!(sys.predict_batch(&indices), replica.predict_batch(&indices));
        // An independently built system is not a replica.
        assert!(!sys.shares_state_with(&toy_system()));
    }

    #[test]
    fn active_party_is_party_zero_by_convention() {
        let sys = toy_system();
        assert_eq!(sys.active_party().id, PartyId(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_sample_panics() {
        toy_system().predict(99);
    }

    #[test]
    #[should_panic(expected = "model width mismatch")]
    fn inconsistent_model_width_rejected() {
        let w = Matrix::zeros(3, 1);
        let model = LogisticRegression::from_parameters(w, vec![0.0], 2);
        let partition = VerticalPartition::contiguous(&[2, 2]);
        let global = Matrix::zeros(2, 4);
        VflSystem::from_global(model, partition, &global);
    }
}
