//! Vertical feature partitions.

use crate::party::PartyId;
use fia_linalg::Matrix;
use rand::seq::SliceRandom;
use rand::{rngs::StdRng, SeedableRng};

/// Assignment of every global feature column to exactly one party.
#[derive(Debug, Clone)]
pub struct VerticalPartition {
    /// `assignments[p]` = sorted global feature indices owned by party `p`.
    assignments: Vec<Vec<usize>>,
    n_features: usize,
}

impl VerticalPartition {
    /// Builds a partition from explicit per-party index lists.
    ///
    /// # Panics
    /// Panics unless the lists are disjoint and cover `0..n_features`.
    pub fn from_assignments(assignments: Vec<Vec<usize>>, n_features: usize) -> Self {
        let mut seen = vec![false; n_features];
        for a in &assignments {
            for &f in a {
                assert!(f < n_features, "feature index {f} out of range");
                assert!(!seen[f], "feature {f} assigned twice");
                seen[f] = true;
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "every feature must be assigned to a party"
        );
        let mut assignments = assignments;
        for a in &mut assignments {
            a.sort_unstable();
        }
        VerticalPartition {
            assignments,
            n_features,
        }
    }

    /// Contiguous split: party `p` gets the next `sizes[p]` columns.
    pub fn contiguous(sizes: &[usize]) -> Self {
        let n_features = sizes.iter().sum();
        let mut assignments = Vec::with_capacity(sizes.len());
        let mut next = 0;
        for &s in sizes {
            assignments.push((next..next + s).collect());
            next += s;
        }
        VerticalPartition::from_assignments(assignments, n_features)
    }

    /// The paper's two-party experimental setup: a random
    /// `target_fraction` of features goes to the (single) passive target
    /// party; the rest belongs to the adversary side. Party 0 is the
    /// adversary block, party 1 the target block.
    pub fn two_block_random(n_features: usize, target_fraction: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&target_fraction),
            "target fraction must be in [0, 1)"
        );
        let d_target = ((n_features as f64) * target_fraction).round() as usize;
        let d_target = d_target.clamp(1, n_features.saturating_sub(1));
        let mut idx: Vec<usize> = (0..n_features).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        idx.shuffle(&mut rng);
        let target: Vec<usize> = idx[..d_target].to_vec();
        let adv: Vec<usize> = idx[d_target..].to_vec();
        VerticalPartition::from_assignments(vec![adv, target], n_features)
    }

    /// Number of parties `m`.
    pub fn n_parties(&self) -> usize {
        self.assignments.len()
    }

    /// Total feature count `d`.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Feature indices owned by `party`.
    pub fn features_of(&self, party: PartyId) -> &[usize] {
        &self.assignments[party.0]
    }

    /// Owner of global feature `f`.
    pub fn owner_of(&self, f: usize) -> PartyId {
        for (p, a) in self.assignments.iter().enumerate() {
            if a.binary_search(&f).is_ok() {
                return PartyId(p);
            }
        }
        unreachable!("partition covers all features")
    }

    /// Splits a global feature matrix into per-party column blocks.
    pub fn split_matrix(&self, global: &Matrix) -> Vec<Matrix> {
        assert_eq!(global.cols(), self.n_features, "width mismatch");
        self.assignments
            .iter()
            .map(|a| global.select_columns(a).expect("indices in range"))
            .collect()
    }

    /// Union of the feature indices of `parties`, sorted.
    pub fn union_features(&self, parties: &[PartyId]) -> Vec<usize> {
        let mut out: Vec<usize> = parties
            .iter()
            .flat_map(|p| self.assignments[p.0].iter().copied())
            .collect();
        out.sort_unstable();
        out
    }

    /// Reassembles a full sample from per-party slices (the step the
    /// secure protocol performs obliviously).
    pub fn assemble(&self, parts: &[&[f64]]) -> Vec<f64> {
        assert_eq!(parts.len(), self.n_parties(), "one slice per party");
        let mut full = vec![0.0; self.n_features];
        for (a, part) in self.assignments.iter().zip(parts.iter()) {
            assert_eq!(a.len(), part.len(), "slice width mismatch");
            for (&f, &v) in a.iter().zip(part.iter()) {
                full[f] = v;
            }
        }
        full
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_covers_all() {
        let p = VerticalPartition::contiguous(&[2, 3]);
        assert_eq!(p.n_parties(), 2);
        assert_eq!(p.n_features(), 5);
        assert_eq!(p.features_of(PartyId(0)), &[0, 1]);
        assert_eq!(p.features_of(PartyId(1)), &[2, 3, 4]);
    }

    #[test]
    fn owner_lookup() {
        let p = VerticalPartition::contiguous(&[2, 2]);
        assert_eq!(p.owner_of(0), PartyId(0));
        assert_eq!(p.owner_of(3), PartyId(1));
    }

    #[test]
    fn two_block_random_fraction() {
        let p = VerticalPartition::two_block_random(20, 0.4, 7);
        assert_eq!(p.features_of(PartyId(1)).len(), 8);
        assert_eq!(p.features_of(PartyId(0)).len(), 12);
        // Deterministic per seed.
        let q = VerticalPartition::two_block_random(20, 0.4, 7);
        assert_eq!(p.features_of(PartyId(1)), q.features_of(PartyId(1)));
    }

    #[test]
    fn two_block_clamps_to_leave_adversary_something() {
        let p = VerticalPartition::two_block_random(5, 0.99, 1);
        assert!(!p.features_of(PartyId(0)).is_empty());
        assert!(!p.features_of(PartyId(1)).is_empty());
    }

    #[test]
    fn split_and_assemble_roundtrip() {
        let p = VerticalPartition::from_assignments(vec![vec![0, 3], vec![1, 2]], 4);
        let global = Matrix::from_rows(&[vec![10.0, 11.0, 12.0, 13.0]]).unwrap();
        let blocks = p.split_matrix(&global);
        assert_eq!(blocks[0].row(0), &[10.0, 13.0]);
        assert_eq!(blocks[1].row(0), &[11.0, 12.0]);
        let full = p.assemble(&[blocks[0].row(0), blocks[1].row(0)]);
        assert_eq!(full, vec![10.0, 11.0, 12.0, 13.0]);
    }

    #[test]
    fn union_features_sorted() {
        let p = VerticalPartition::from_assignments(vec![vec![4], vec![0, 2], vec![1, 3]], 5);
        assert_eq!(p.union_features(&[PartyId(0), PartyId(2)]), vec![1, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn duplicate_assignment_rejected() {
        VerticalPartition::from_assignments(vec![vec![0, 1], vec![1]], 2);
    }

    #[test]
    #[should_panic(expected = "must be assigned")]
    fn uncovered_feature_rejected() {
        VerticalPartition::from_assignments(vec![vec![0]], 2);
    }
}
