//! Private-set-intersection–style sample alignment (simulated).
//!
//! The paper assumes "the parties have determined and aligned their common
//! samples using private set intersection techniques without revealing any
//! information about samples not in the intersection" (Section III-A). We
//! reproduce the *interface* of that step: each party contributes its
//! sample-id set, the protocol outputs the intersection in a canonical
//! order plus each party's row positions, and non-intersection ids never
//! appear in the output. The cryptographic blinding itself is out of
//! scope (DESIGN.md §4).

use std::collections::HashMap;

/// Result of aligning `m` parties' sample-id sets.
#[derive(Debug, Clone)]
pub struct AlignmentResult {
    /// Intersection ids in ascending order — the canonical joint order.
    pub common_ids: Vec<u64>,
    /// `row_maps[p][k]` = row index in party `p`'s local table holding
    /// `common_ids[k]`.
    pub row_maps: Vec<Vec<usize>>,
}

impl AlignmentResult {
    /// Number of aligned samples.
    pub fn n_common(&self) -> usize {
        self.common_ids.len()
    }
}

/// Computes the sample intersection across parties.
///
/// # Panics
/// Panics if a party presents duplicate ids (ill-formed input — PSI
/// protocols require sets).
pub fn align_samples(party_ids: &[Vec<u64>]) -> AlignmentResult {
    assert!(!party_ids.is_empty(), "need at least one party");
    // Index each party's ids → local row.
    let maps: Vec<HashMap<u64, usize>> = party_ids
        .iter()
        .map(|ids| {
            let mut m = HashMap::with_capacity(ids.len());
            for (row, &id) in ids.iter().enumerate() {
                let prev = m.insert(id, row);
                assert!(prev.is_none(), "duplicate sample id {id} within a party");
            }
            m
        })
        .collect();

    let mut common: Vec<u64> = maps[0]
        .keys()
        .copied()
        .filter(|id| maps[1..].iter().all(|m| m.contains_key(id)))
        .collect();
    common.sort_unstable();

    let row_maps = maps
        .iter()
        .map(|m| common.iter().map(|id| m[id]).collect())
        .collect();

    AlignmentResult {
        common_ids: common,
        row_maps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersection_and_row_maps() {
        let a = vec![5, 3, 9, 1];
        let b = vec![9, 5, 7];
        let r = align_samples(&[a, b]);
        assert_eq!(r.common_ids, vec![5, 9]);
        assert_eq!(r.n_common(), 2);
        // Party 0: id 5 at row 0, id 9 at row 2.
        assert_eq!(r.row_maps[0], vec![0, 2]);
        // Party 1: id 5 at row 1, id 9 at row 0.
        assert_eq!(r.row_maps[1], vec![1, 0]);
    }

    #[test]
    fn disjoint_sets_yield_empty() {
        let r = align_samples(&[vec![1, 2], vec![3, 4]]);
        assert!(r.common_ids.is_empty());
    }

    #[test]
    fn three_parties() {
        let r = align_samples(&[vec![1, 2, 3, 4], vec![2, 4, 6], vec![4, 2, 0]]);
        assert_eq!(r.common_ids, vec![2, 4]);
        assert_eq!(r.row_maps[2], vec![1, 0]);
    }

    #[test]
    fn non_intersection_ids_never_leak() {
        let r = align_samples(&[vec![1, 2, 99], vec![2, 98]]);
        // Neither 99 nor 98 appears anywhere in the result.
        assert_eq!(r.common_ids, vec![2]);
        for ids in &r.row_maps {
            assert_eq!(ids.len(), 1);
        }
    }

    #[test]
    #[should_panic(expected = "duplicate sample id")]
    fn duplicate_ids_rejected() {
        align_samples(&[vec![1, 1], vec![1]]);
    }
}
