#![warn(missing_docs)]

//! # fia-vfl — vertical federated learning substrate
//!
//! Models the deployment the paper attacks (Sections II-B and III):
//! `m` parties hold the same samples with disjoint feature subsets; one
//! *active* party owns the labels and initiates predictions; the parties
//! jointly evaluate a trained model through a protocol that reveals
//! *only* the confidence-score vector `v` to the active party.
//!
//! Components:
//!
//! * [`VerticalPartition`] — which party owns which global feature column.
//! * [`Party`] / [`PartyId`] — a participant with its private columns.
//! * [`align_samples`] — PSI-style sample alignment (simulated; see
//!   DESIGN.md §4 for the substitution note).
//! * [`VflSystem`] — the joint prediction protocol plus the audit trail
//!   showing the adversary accumulated nothing beyond `(x_adv, v)` pairs.
//! * [`ThreatModel`] — which parties collude; yields the adversary /
//!   target feature-index split every attack consumes.

mod alignment;
mod partition;
mod party;
mod system;
mod threat;
mod training;

pub use alignment::{align_samples, AlignmentResult};
pub use partition::VerticalPartition;
pub use party::{Party, PartyId};
pub use system::{PredictionRecord, VflSystem};
pub use threat::{AdversaryView, ThreatModel};
pub use training::{train_federated_lr, FederatedLrConfig, TrainingAudit};
