//! Property tests on the VFL substrate's structural invariants.
//!
//! Cases are driven by a seeded [`rand::rngs::StdRng`] sweep (the offline
//! build has no `proptest`); each case is reproducible from its index.

use fia_linalg::Matrix;
use fia_vfl::{align_samples, PartyId, VerticalPartition};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::BTreeSet;

const CASES: u64 = 48;

fn case_rng(test: u64, case: u64) -> StdRng {
    StdRng::seed_from_u64(test.wrapping_mul(0x9E3779B97F4A7C15) ^ case)
}

/// A two-block random partition always covers every feature exactly
/// once, with both sides non-empty and the requested target share (up to
/// rounding and the non-empty clamp).
#[test]
fn two_block_partition_invariants() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let d = rng.gen_range(2..60usize);
        let frac = rng.gen_range(0.01f64..0.95);
        let seed: u64 = rng.gen_range(0..10_000u64);

        let p = VerticalPartition::two_block_random(d, frac, seed);
        let adv = p.features_of(PartyId(0));
        let tgt = p.features_of(PartyId(1));
        assert!(!adv.is_empty() && !tgt.is_empty());
        assert_eq!(adv.len() + tgt.len(), d);
        // Disjoint and sorted.
        let mut all: Vec<usize> = adv.iter().chain(tgt.iter()).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), d);
        // owner_of agrees with the lists.
        for &f in adv {
            assert_eq!(p.owner_of(f), PartyId(0));
        }
        // Requested share respected up to rounding + clamp.
        let requested = ((d as f64) * frac).round() as usize;
        let clamped = requested.clamp(1, d - 1);
        assert_eq!(tgt.len(), clamped);
    }
}

/// split_matrix ∘ assemble is the identity on every row.
#[test]
fn split_assemble_roundtrip() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let d = rng.gen_range(2..20usize);
        let frac = rng.gen_range(0.1f64..0.9);
        let seed: u64 = rng.gen_range(0..10_000u64);

        let p = VerticalPartition::two_block_random(d, frac, seed);
        let global = Matrix::from_fn(4, d, |i, j| (i * d + j) as f64 * 0.01);
        let blocks = p.split_matrix(&global);
        for i in 0..4 {
            let parts: Vec<&[f64]> = blocks.iter().map(|b| b.row(i)).collect();
            let full = p.assemble(&parts);
            assert_eq!(full.as_slice(), global.row(i));
        }
    }
}

/// PSI alignment returns exactly the set intersection, in ascending
/// order, with row maps pointing at the right local rows.
#[test]
fn alignment_is_set_intersection() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        let na = rng.gen_range(1..40usize);
        let nb = rng.gen_range(1..40usize);
        let mut a = BTreeSet::new();
        while a.len() < na {
            a.insert(rng.gen_range(0..200u64));
        }
        let mut b = BTreeSet::new();
        while b.len() < nb {
            b.insert(rng.gen_range(0..200u64));
        }

        // Scramble local orders so the alignment cannot rely on them.
        let mut av: Vec<u64> = a.iter().copied().collect();
        let mut bv: Vec<u64> = b.iter().copied().collect();
        let rot = case as usize % av.len().max(1);
        av.rotate_left(rot);
        bv.reverse();

        let r = align_samples(&[av.clone(), bv.clone()]);
        // Matches the mathematical intersection.
        let expected: Vec<u64> = a.intersection(&b).copied().collect();
        assert_eq!(&r.common_ids, &expected);
        // Row maps are correct.
        for (k, &id) in r.common_ids.iter().enumerate() {
            assert_eq!(av[r.row_maps[0][k]], id);
            assert_eq!(bv[r.row_maps[1][k]], id);
        }
        // Sorted ascending.
        for w in r.common_ids.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}

/// Contiguous partitions hand each party the expected width and keep
/// union_features sorted regardless of coalition order.
#[test]
fn contiguous_union_sorted() {
    for case in 0..CASES {
        let mut rng = case_rng(4, case);
        let n_parties = rng.gen_range(2..5usize);
        let sizes: Vec<usize> = (0..n_parties).map(|_| rng.gen_range(1..6usize)).collect();

        let p = VerticalPartition::contiguous(&sizes);
        assert_eq!(p.n_parties(), sizes.len());
        for (i, &s) in sizes.iter().enumerate() {
            assert_eq!(p.features_of(PartyId(i)).len(), s);
        }
        // Reverse-order coalition still yields sorted union.
        let coalition: Vec<PartyId> = (0..sizes.len()).rev().map(PartyId).collect();
        let u = p.union_features(&coalition);
        assert_eq!(u.len(), sizes.iter().sum::<usize>());
        for w in u.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}
