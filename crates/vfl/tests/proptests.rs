//! Property tests on the VFL substrate's structural invariants.

use fia_linalg::Matrix;
use fia_vfl::{align_samples, PartyId, VerticalPartition};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A two-block random partition always covers every feature exactly
    /// once, with both sides non-empty and the requested target share (up
    /// to rounding and the non-empty clamp).
    #[test]
    fn two_block_partition_invariants(
        d in 2usize..60,
        frac in 0.01f64..0.95,
        seed in 0u64..10_000,
    ) {
        let p = VerticalPartition::two_block_random(d, frac, seed);
        let adv = p.features_of(PartyId(0));
        let tgt = p.features_of(PartyId(1));
        prop_assert!(!adv.is_empty() && !tgt.is_empty());
        prop_assert_eq!(adv.len() + tgt.len(), d);
        // Disjoint and sorted.
        let mut all: Vec<usize> = adv.iter().chain(tgt.iter()).copied().collect();
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len(), d);
        // owner_of agrees with the lists.
        for &f in adv {
            prop_assert_eq!(p.owner_of(f), PartyId(0));
        }
        // Requested share respected up to rounding + clamp.
        let requested = ((d as f64) * frac).round() as usize;
        let clamped = requested.clamp(1, d - 1);
        prop_assert_eq!(tgt.len(), clamped);
    }

    /// split_matrix ∘ assemble is the identity on every row.
    #[test]
    fn split_assemble_roundtrip(
        d in 2usize..20,
        frac in 0.1f64..0.9,
        seed in 0u64..10_000,
    ) {
        let p = VerticalPartition::two_block_random(d, frac, seed);
        let global = Matrix::from_fn(4, d, |i, j| (i * d + j) as f64 * 0.01);
        let blocks = p.split_matrix(&global);
        for i in 0..4 {
            let parts: Vec<&[f64]> = blocks.iter().map(|b| b.row(i)).collect();
            let full = p.assemble(&parts);
            prop_assert_eq!(full.as_slice(), global.row(i));
        }
    }

    /// PSI alignment returns exactly the set intersection, in ascending
    /// order, with row maps pointing at the right local rows.
    #[test]
    fn alignment_is_set_intersection(
        a in prop::collection::hash_set(0u64..200, 1..40),
        b in prop::collection::hash_set(0u64..200, 1..40),
    ) {
        let av: Vec<u64> = a.iter().copied().collect();
        let bv: Vec<u64> = b.iter().copied().collect();
        let r = align_samples(&[av.clone(), bv.clone()]);
        // Matches the mathematical intersection.
        let mut expected: Vec<u64> = a.intersection(&b).copied().collect();
        expected.sort_unstable();
        prop_assert_eq!(&r.common_ids, &expected);
        // Row maps are correct.
        for (k, &id) in r.common_ids.iter().enumerate() {
            prop_assert_eq!(av[r.row_maps[0][k]], id);
            prop_assert_eq!(bv[r.row_maps[1][k]], id);
        }
        // Sorted ascending.
        for w in r.common_ids.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    /// Contiguous partitions hand each party the expected width and keep
    /// union_features sorted regardless of coalition order.
    #[test]
    fn contiguous_union_sorted(sizes in prop::collection::vec(1usize..6, 2..5)) {
        let p = VerticalPartition::contiguous(&sizes);
        prop_assert_eq!(p.n_parties(), sizes.len());
        for (i, &s) in sizes.iter().enumerate() {
            prop_assert_eq!(p.features_of(PartyId(i)).len(), s);
        }
        // Reverse-order coalition still yields sorted union.
        let coalition: Vec<PartyId> = (0..sizes.len()).rev().map(PartyId).collect();
        let u = p.union_features(&coalition);
        prop_assert_eq!(u.len(), sizes.iter().sum::<usize>());
        for w in u.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }
}
