#![warn(missing_docs)]

//! # fia-defense — countermeasures from Section VII
//!
//! * [`RoundingDefense`] / [`RoundedModel`] — coarsen confidence scores
//!   to `b` floating digits before releasing them (Fig. 11a–d). Breaks
//!   ESA at aggressive rounding; GRNA is largely insensitive.
//! * Dropout — plumbed through [`fia_models::MlpConfig::with_dropout`];
//!   [`dropout_defended_mlp`] is the convenience constructor used by the
//!   Fig. 11e–f benches.
//! * [`screening`] — the pre-processing step: check the `d_target ≤ c−1`
//!   exposure condition and flag features whose cross-party correlation
//!   makes them easy GRNA targets.
//! * [`verify`] — the post-processing step: a (simulated) enclave replays
//!   the attack against each candidate prediction output and withholds
//!   responses that would leak too much.
//! * [`ScoreDefense`] / [`DefensePipeline`] — the batch-first hook every
//!   score-transforming defense implements, matching the protocol's
//!   batched release rounds.

pub mod screening;
pub mod verify;

mod batch;
mod noise;
mod rounding;

pub use batch::{DefensePipeline, ScoreDefense};
pub use noise::{NoiseDefense, NoisyModel};
pub use rounding::{RoundedModel, RoundingDefense};

use fia_data::Dataset;
use fia_models::{Mlp, MlpConfig};

/// Trains the paper's vertical-FL NN with dropout regularization between
/// hidden layers — the Fig. 11e–f countermeasure.
pub fn dropout_defended_mlp(train: &Dataset, base: &MlpConfig, p: f64) -> Mlp {
    let cfg = base.clone().with_dropout(p);
    Mlp::fit(train, &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fia_data::{make_classification, normalize_dataset, SynthConfig};
    use fia_models::{accuracy, Activation};

    #[test]
    fn dropout_defended_model_still_learns() {
        let cfg = SynthConfig {
            n_samples: 400,
            n_features: 8,
            n_informative: 6,
            n_redundant: 1,
            n_classes: 2,
            class_sep: 2.0,
            redundant_noise: 0.2,
            flip_y: 0.0,
            shuffle_features: false,
            seed: 5,
        };
        let ds = normalize_dataset(&make_classification(&cfg)).0;
        let base = MlpConfig {
            hidden: vec![32, 16],
            activation: Activation::Relu,
            layer_norm: false,
            dropout: None,
            epochs: 25,
            batch_size: 32,
            lr: 3e-3,
            seed: 1,
        };
        let model = dropout_defended_mlp(&ds, &base, 0.25);
        let acc = accuracy(&model, &ds.features, &ds.labels);
        assert!(acc > 0.8, "defended accuracy {acc}");
    }
}
