//! Batch-aware defense hooks.
//!
//! The protocol's scale path ([`fia_vfl`'s] batched joint-prediction
//! round) releases an `n × c` confidence matrix per round, so defenses
//! must operate on batches too. [`ScoreDefense`] is the uniform hook:
//! rounding and noise implement it, and [`DefensePipeline`] composes
//! several defenses in release order. Single-vector calls are thin
//! wrappers over a 1-row batch — mirroring the attack side's
//! [`fia_core::Attack`] design.

use crate::noise::NoiseDefense;
use crate::rounding::RoundingDefense;
use fia_linalg::Matrix;

/// A confidence-score transformation applied at the protocol boundary
/// before scores are revealed to the active party.
pub trait ScoreDefense {
    /// Short stable identifier for reports.
    fn name(&self) -> &'static str;

    /// Stable *parameterized* identifier (`"rounding(b=3)"`) for
    /// scenario fingerprints: two defenses with the same descriptor
    /// must transform scores identically. Defaults to the bare name
    /// for parameter-free defenses.
    fn descriptor(&self) -> String {
        self.name().to_string()
    }

    /// Transforms a whole released batch (`n × c`).
    fn defend_batch(&self, scores: &Matrix) -> Matrix;

    /// Single-vector compatibility wrapper: a 1-row batch.
    fn defend_one(&self, v: &[f64]) -> Vec<f64> {
        self.defend_batch(&Matrix::row_vector(v)).row(0).to_vec()
    }
}

impl ScoreDefense for RoundingDefense {
    fn name(&self) -> &'static str {
        "rounding"
    }

    fn descriptor(&self) -> String {
        format!("rounding(b={})", self.digits)
    }

    fn defend_batch(&self, scores: &Matrix) -> Matrix {
        self.round_matrix(scores)
    }
}

impl ScoreDefense for NoiseDefense {
    fn name(&self) -> &'static str {
        "noise"
    }

    fn descriptor(&self) -> String {
        format!("noise(sigma={},seed={})", self.sigma, self.seed)
    }

    /// Unlike a bare [`NoiseDefense::perturb`] call (which reseeds from
    /// the fixed config seed every time), the protocol-boundary hook
    /// folds the released scores into the seed: two different release
    /// rounds draw different noise, so an adversary cannot cancel the
    /// perturbation by differencing rounds, while a given batch remains
    /// deterministic for reproducible experiments.
    fn defend_batch(&self, scores: &Matrix) -> Matrix {
        // FNV-1a over the raw score bits.
        let mut h = 0xcbf29ce484222325u64 ^ self.seed.wrapping_mul(0x100000001b3);
        for &v in scores.as_slice() {
            h ^= v.to_bits();
            h = h.wrapping_mul(0x100000001b3);
        }
        NoiseDefense::new(self.sigma, h).perturb(scores)
    }
}

/// Several defenses applied in order, batch-first.
#[derive(Default)]
pub struct DefensePipeline {
    stages: Vec<Box<dyn ScoreDefense + Send + Sync>>,
}

impl DefensePipeline {
    /// An empty (identity) pipeline.
    pub fn new() -> Self {
        DefensePipeline { stages: Vec::new() }
    }

    /// Appends a defense stage.
    pub fn then(mut self, stage: impl ScoreDefense + Send + Sync + 'static) -> Self {
        self.stages.push(Box::new(stage));
        self
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// `true` when the pipeline is the identity.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Stage names in release order.
    pub fn stage_names(&self) -> Vec<&'static str> {
        self.stages.iter().map(|s| s.name()).collect()
    }

    /// Parameterized stage descriptors in release order (see
    /// [`ScoreDefense::descriptor`]) — what scenario fingerprints hash,
    /// so configurations differing only in a stage parameter do not
    /// collide.
    pub fn stage_descriptors(&self) -> Vec<String> {
        self.stages.iter().map(|s| s.descriptor()).collect()
    }
}

impl ScoreDefense for DefensePipeline {
    fn name(&self) -> &'static str {
        "pipeline"
    }

    fn defend_batch(&self, scores: &Matrix) -> Matrix {
        let mut out = scores.clone();
        for stage in &self.stages {
            out = stage.defend_batch(&out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scores() -> Matrix {
        Matrix::from_rows(&[
            vec![0.731, 0.168, 0.101],
            vec![0.334, 0.333, 0.333],
            vec![0.055, 0.925, 0.020],
        ])
        .unwrap()
    }

    #[test]
    fn rounding_hook_matches_direct_call() {
        let d = RoundingDefense::coarse();
        let batch = ScoreDefense::defend_batch(&d, &scores());
        assert_eq!(batch, d.round_matrix(&scores()));
        assert_eq!(d.name(), "rounding");
    }

    #[test]
    fn defend_one_wraps_single_row() {
        let d = RoundingDefense::fine();
        let one = d.defend_one(&[0.7315, 0.1685, 0.1]);
        assert_eq!(one, vec![0.731, 0.168, 0.1]);
    }

    #[test]
    fn descriptors_carry_parameters() {
        assert_eq!(RoundingDefense::coarse().descriptor(), "rounding(b=1)");
        assert_ne!(
            RoundingDefense::coarse().descriptor(),
            RoundingDefense::fine().descriptor()
        );
        assert_ne!(
            NoiseDefense::new(0.01, 5).descriptor(),
            NoiseDefense::new(0.02, 5).descriptor()
        );
    }

    #[test]
    fn pipeline_applies_in_order() {
        // Noise then rounding: output must be rounded (rounding is last).
        let p = DefensePipeline::new()
            .then(NoiseDefense::new(0.01, 5))
            .then(RoundingDefense::coarse());
        assert_eq!(p.len(), 2);
        assert_eq!(p.stage_names(), vec!["noise", "rounding"]);
        assert_eq!(
            p.stage_descriptors(),
            vec!["noise(sigma=0.01,seed=5)", "rounding(b=1)"]
        );
        let out = p.defend_batch(&scores());
        for &v in out.as_slice() {
            assert!(
                ((v * 10.0) - (v * 10.0).round()).abs() < 1e-9,
                "score {v} not rounded"
            );
        }
    }

    #[test]
    fn noise_hook_draws_fresh_noise_per_round() {
        let d = NoiseDefense::new(0.05, 9);
        let round1 = scores();
        let round2 = scores().map(|v| (v + 0.01).min(1.0));
        let out1 = ScoreDefense::defend_batch(&d, &round1);
        let out1_again = ScoreDefense::defend_batch(&d, &round1);
        let out2 = ScoreDefense::defend_batch(&d, &round2);
        // Deterministic per batch content…
        assert_eq!(out1, out1_again);
        // …but round 2's noise is not round 1's shifted by the same
        // deltas (which a fixed seed would produce and an adversary
        // could difference away).
        let delta1 = out1.sub(&round1).unwrap();
        let delta2 = out2.sub(&round2).unwrap();
        assert!(delta1.max_abs_diff(&delta2).unwrap() > 1e-6);
    }

    #[test]
    fn empty_pipeline_is_identity() {
        let p = DefensePipeline::new();
        assert!(p.is_empty());
        assert_eq!(p.defend_batch(&scores()), scores());
    }
}
