//! Post-processing verification (Section VII).
//!
//! "If the parties utilize secure hardware, e.g., Intel SGX, for
//! computing the model predictions, then they can mimic these attacks
//! inside the secure enclaves … if the possible leakage exceeds a
//! pre-defined threshold for any party, they do not reveal the prediction
//! output." The enclave is simulated as a plain process (DESIGN.md §4);
//! the decision logic is implemented faithfully: replay ESA against the
//! candidate output and withhold it when the reconstruction lands too
//! close to the true private values.

use fia_core::{Attack, EqualitySolvingAttack, QueryBatch};
use fia_linalg::Matrix;
use fia_models::LogisticRegression;

/// Verdict for one candidate prediction release.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Safe to reveal; carries the (possibly post-processed) scores.
    Released(Vec<f64>),
    /// Withheld; carries the per-feature absolute reconstruction errors
    /// that fell below the threshold.
    Withheld(Vec<f64>),
}

/// The simulated-enclave verifier for logistic regression deployments.
pub struct LeakageVerifier<'a> {
    attack: EqualitySolvingAttack<'a>,
    /// Minimum tolerated per-feature absolute error: a reconstruction
    /// closer than this to the truth on *any* target feature blocks the
    /// release.
    pub min_error: f64,
}

impl<'a> LeakageVerifier<'a> {
    /// Builds a verifier that replays ESA with the adversary's exact
    /// knowledge (`θ`, `x_adv`, `v`).
    pub fn new(
        model: &'a LogisticRegression,
        adv_indices: &[usize],
        target_indices: &[usize],
        min_error: f64,
    ) -> Self {
        LeakageVerifier {
            attack: EqualitySolvingAttack::new(model, adv_indices, target_indices),
            min_error,
        }
    }

    /// Replays the attack on one candidate output. `x_adv` is the
    /// adversary-visible slice, `x_target_true` the private values the
    /// enclave knows, `v` the scores about to be released.
    pub fn check(&self, x_adv: &[f64], x_target_true: &[f64], v: &[f64]) -> Verdict {
        let est = self.attack.infer(x_adv, v);
        let errors: Vec<f64> = est
            .iter()
            .zip(x_target_true.iter())
            .map(|(&a, &b)| (a - b).abs())
            .collect();
        if errors.iter().any(|&e| e < self.min_error) {
            Verdict::Withheld(errors)
        } else {
            Verdict::Released(v.to_vec())
        }
    }

    /// Replays the attack against a whole candidate release round in one
    /// batched pass — the enclave-side mirror of the protocol's batch
    /// prediction path. Rows of `x_adv` / `x_target_true` / `v` are
    /// aligned; one verdict is returned per row.
    pub fn check_batch(&self, x_adv: &Matrix, x_target_true: &Matrix, v: &Matrix) -> Vec<Verdict> {
        assert_eq!(x_adv.rows(), v.rows(), "row count mismatch");
        assert_eq!(x_target_true.rows(), v.rows(), "row count mismatch");
        let result = self
            .attack
            .infer_batch(&QueryBatch::new(x_adv.clone(), v.clone()));
        (0..v.rows())
            .map(|i| {
                let errors: Vec<f64> = result
                    .estimates
                    .row(i)
                    .iter()
                    .zip(x_target_true.row(i).iter())
                    .map(|(&a, &b)| (a - b).abs())
                    .collect();
                if errors.iter().any(|&e| e < self.min_error) {
                    Verdict::Withheld(errors)
                } else {
                    Verdict::Released(v.row(i).to_vec())
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fia_linalg::Matrix;
    use fia_models::PredictProba;

    fn model() -> LogisticRegression {
        // 3 classes, 4 features → 2 equations; 2 target features are
        // exactly recoverable, so the verifier must withhold.
        let mut state = 0xDEADBEEFu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let w = Matrix::from_fn(4, 3, |_, _| next());
        LogisticRegression::from_parameters(w, vec![0.0; 3], 3)
    }

    #[test]
    fn exact_leak_is_withheld() {
        let m = model();
        let verifier = LeakageVerifier::new(&m, &[0, 1], &[2, 3], 1e-3);
        let x = [0.4, 0.9, 0.3, 0.7];
        let v = m.predict_proba(&Matrix::row_vector(&x));
        let verdict = verifier.check(&[0.4, 0.9], &[0.3, 0.7], v.row(0));
        assert!(matches!(verdict, Verdict::Withheld(_)), "{verdict:?}");
    }

    #[test]
    fn garbled_scores_are_released() {
        let m = model();
        let verifier = LeakageVerifier::new(&m, &[0, 1], &[2, 3], 1e-3);
        // Uniform scores carry no usable signal: the replayed attack's
        // reconstruction will be far from the truth.
        let verdict = verifier.check(&[0.4, 0.9], &[0.3, 0.7], &[0.34, 0.33, 0.33]);
        assert!(matches!(verdict, Verdict::Released(_)), "{verdict:?}");
    }

    #[test]
    fn batch_check_matches_per_record_verdicts() {
        let m = model();
        let verifier = LeakageVerifier::new(&m, &[0, 1], &[2, 3], 1e-3);
        let xs = [
            [0.4, 0.9, 0.3, 0.7],
            [0.1, 0.2, 0.8, 0.5],
            [0.6, 0.1, 0.2, 0.9],
        ];
        let mut x_adv = Matrix::zeros(3, 2);
        let mut truth = Matrix::zeros(3, 2);
        let mut v = Matrix::zeros(3, 3);
        for (i, x) in xs.iter().enumerate() {
            x_adv.row_mut(i).copy_from_slice(&x[..2]);
            truth.row_mut(i).copy_from_slice(&x[2..]);
            let p = m.predict_proba(&Matrix::row_vector(x));
            v.row_mut(i).copy_from_slice(p.row(0));
        }
        // Garble the middle row so it is released.
        v.row_mut(1).copy_from_slice(&[0.34, 0.33, 0.33]);

        let batch = verifier.check_batch(&x_adv, &truth, &v);
        assert_eq!(batch.len(), 3);
        for (i, verdict) in batch.iter().enumerate() {
            let single = verifier.check(x_adv.row(i), truth.row(i), v.row(i));
            assert_eq!(*verdict, single, "row {i}");
        }
        assert!(matches!(batch[0], Verdict::Withheld(_)));
        assert!(matches!(batch[1], Verdict::Released(_)));
    }

    #[test]
    fn threshold_zero_always_releases() {
        let m = model();
        let verifier = LeakageVerifier::new(&m, &[0, 1], &[2, 3], 0.0);
        let x = [0.1, 0.2, 0.8, 0.5];
        let v = m.predict_proba(&Matrix::row_vector(&x));
        let verdict = verifier.check(&[0.1, 0.2], &[0.8, 0.5], v.row(0));
        assert!(matches!(verdict, Verdict::Released(_)));
    }
}
