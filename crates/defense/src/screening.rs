//! Pre-processing before collaboration (Section VII).
//!
//! Two checks the parties run *before* agreeing to train together:
//!
//! 1. **Class-count exposure** — if a party would contribute
//!    `d_i ≤ c − 1` features, ESA recovers them exactly from a single
//!    prediction; the parties should renegotiate the feature split.
//! 2. **Correlation screening** — features that are strongly correlated
//!    with another party's features are easy GRNA targets; the parties
//!    jointly compute feature correlations (via MPC in the paper; plainly
//!    here) and drop the worst offenders.

use fia_data::correlation::correlation_matrix;
use fia_linalg::Matrix;

/// Outcome of the pre-collaboration exposure check for one party.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExposureRisk {
    /// `d_i ≤ c − 1`: exact ESA recovery possible. Contains the margin
    /// `c − 1 − d_i`.
    ExactRecovery(usize),
    /// More unknowns than equations, but close; contains `d_i − (c − 1)`.
    Marginal(usize),
    /// Comfortable margin.
    Low,
}

/// Evaluates the ESA exposure condition for a party contributing
/// `d_party` features to a `c`-class collaboration.
pub fn exposure_risk(d_party: usize, n_classes: usize) -> ExposureRisk {
    let equations = n_classes.saturating_sub(1);
    if d_party <= equations {
        ExposureRisk::ExactRecovery(equations - d_party)
    } else if d_party <= 2 * equations {
        ExposureRisk::Marginal(d_party - equations)
    } else {
        ExposureRisk::Low
    }
}

/// Report from the joint correlation screen.
#[derive(Debug, Clone)]
pub struct ScreeningReport {
    /// Feature pairs `(own, other)` crossing party boundaries whose
    /// absolute Pearson correlation exceeds the threshold.
    pub risky_pairs: Vec<(usize, usize, f64)>,
    /// Features recommended for removal (greedy cover of risky pairs).
    pub drop_candidates: Vec<usize>,
}

/// Screens cross-party feature correlations: any pair with
/// `|r| > threshold` where the two features belong to *different* parties
/// is flagged, and a greedy minimum set of features covering all flagged
/// pairs is proposed for removal.
pub fn correlation_screen(
    features: &Matrix,
    party_of: &[usize],
    threshold: f64,
) -> ScreeningReport {
    assert_eq!(
        features.cols(),
        party_of.len(),
        "party assignment per feature required"
    );
    let corr = correlation_matrix(features);
    let d = features.cols();
    let mut risky = Vec::new();
    for i in 0..d {
        for j in (i + 1)..d {
            if party_of[i] != party_of[j] && corr[(i, j)].abs() > threshold {
                risky.push((i, j, corr[(i, j)]));
            }
        }
    }
    // Greedy cover: repeatedly drop the feature participating in the most
    // uncovered risky pairs.
    let mut uncovered: Vec<(usize, usize)> = risky.iter().map(|&(i, j, _)| (i, j)).collect();
    let mut drops = Vec::new();
    while !uncovered.is_empty() {
        let mut counts = vec![0usize; d];
        for &(i, j) in &uncovered {
            counts[i] += 1;
            counts[j] += 1;
        }
        let worst =
            fia_linalg::vecops::argmax(&counts.iter().map(|&k| k as f64).collect::<Vec<_>>());
        drops.push(worst);
        uncovered.retain(|&(i, j)| i != worst && j != worst);
    }
    drops.sort_unstable();
    ScreeningReport {
        risky_pairs: risky,
        drop_candidates: drops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposure_thresholds() {
        // 11 classes → 10 equations.
        assert_eq!(exposure_risk(10, 11), ExposureRisk::ExactRecovery(0));
        assert_eq!(exposure_risk(4, 11), ExposureRisk::ExactRecovery(6));
        assert_eq!(exposure_risk(15, 11), ExposureRisk::Marginal(5));
        assert_eq!(exposure_risk(40, 11), ExposureRisk::Low);
        // Binary: a single-feature party is exactly recoverable.
        assert_eq!(exposure_risk(1, 2), ExposureRisk::ExactRecovery(0));
        assert_eq!(exposure_risk(2, 2), ExposureRisk::Marginal(1));
    }

    #[test]
    fn screen_flags_cross_party_copies() {
        // Feature 2 (party 1) is a copy of feature 0 (party 0).
        let features = Matrix::from_fn(50, 3, |i, j| match j {
            0 => (i as f64 * 0.618).fract(),
            1 => ((i * i) as f64 * 0.271).fract(),
            _ => (i as f64 * 0.618).fract(),
        });
        let report = correlation_screen(&features, &[0, 0, 1], 0.9);
        assert_eq!(report.risky_pairs.len(), 1);
        let (i, j, r) = report.risky_pairs[0];
        assert_eq!((i, j), (0, 2));
        assert!(r.abs() > 0.99);
        assert_eq!(report.drop_candidates.len(), 1);
        assert!(report.drop_candidates[0] == 0 || report.drop_candidates[0] == 2);
    }

    #[test]
    fn same_party_correlation_not_flagged() {
        // Features 0 and 1 are identical but both belong to party 0.
        let features = Matrix::from_fn(30, 2, |i, _| i as f64 / 30.0);
        let report = correlation_screen(&features, &[0, 0], 0.5);
        assert!(report.risky_pairs.is_empty());
        assert!(report.drop_candidates.is_empty());
    }

    #[test]
    fn greedy_cover_prefers_hub_feature() {
        // Feature 0 (party 0) correlates with features 2 and 3 (party 1);
        // dropping 0 covers both pairs.
        let base: Vec<f64> = (0..40).map(|i| (i as f64 * 0.37).fract()).collect();
        let features = Matrix::from_fn(40, 4, |i, j| match j {
            0 | 2 | 3 => base[i],
            _ => ((i * 7) as f64 * 0.53).fract(),
        });
        let report = correlation_screen(&features, &[0, 0, 1, 1], 0.9);
        assert_eq!(report.risky_pairs.len(), 2);
        assert_eq!(report.drop_candidates, vec![0]);
    }
}
