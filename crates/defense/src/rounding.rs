//! Confidence-score rounding (Fig. 11a–d).
//!
//! "A possible defense to ESA is to coarsen the confidence scores v
//! returned to the active party, for example, round v down to b floating
//! point digits before revealing it."

use fia_linalg::Matrix;
use fia_models::PredictProba;

/// Rounds confidence scores *down* to `b` floating-point digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundingDefense {
    /// Number of retained decimal digits `b` (paper evaluates 1 and 3).
    pub digits: u32,
}

impl RoundingDefense {
    /// Rounding to one digit (`0.1` granularity) — the setting that
    /// defeats ESA in Fig. 11a–b.
    pub fn coarse() -> Self {
        RoundingDefense { digits: 1 }
    }

    /// Rounding to three digits (`0.001`) — barely affects the attacks.
    pub fn fine() -> Self {
        RoundingDefense { digits: 3 }
    }

    /// Rounds one score down to the retained precision.
    pub fn round_value(&self, v: f64) -> f64 {
        let scale = 10f64.powi(self.digits as i32);
        (v * scale).floor() / scale
    }

    /// Rounds a whole confidence matrix.
    pub fn round_matrix(&self, scores: &Matrix) -> Matrix {
        scores.map(|v| self.round_value(v))
    }
}

/// A model wrapper applying the rounding defense at the protocol
/// boundary; implements [`PredictProba`] so every attack consumes the
/// defended scores transparently.
pub struct RoundedModel<M: PredictProba> {
    inner: M,
    defense: RoundingDefense,
}

impl<M: PredictProba> RoundedModel<M> {
    /// Wraps `inner` with the given rounding policy.
    pub fn new(inner: M, defense: RoundingDefense) -> Self {
        RoundedModel { inner, defense }
    }

    /// The undefended model.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// The active rounding policy.
    pub fn defense(&self) -> RoundingDefense {
        self.defense
    }
}

impl<M: PredictProba> PredictProba for RoundedModel<M> {
    fn predict_proba(&self, x: &Matrix) -> Matrix {
        self.defense.round_matrix(&self.inner.predict_proba(x))
    }

    fn n_features(&self) -> usize {
        self.inner.n_features()
    }

    fn n_classes(&self) -> usize {
        self.inner.n_classes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fia_linalg::Matrix;
    use fia_models::LogisticRegression;

    #[test]
    fn rounds_down_not_nearest() {
        let d = RoundingDefense { digits: 1 };
        assert_eq!(d.round_value(0.19), 0.1);
        assert_eq!(d.round_value(0.99), 0.9);
        assert_eq!(d.round_value(0.10), 0.1);
    }

    #[test]
    fn three_digits_small_perturbation() {
        let d = RoundingDefense::fine();
        let v = 0.123456;
        assert!((d.round_value(v) - 0.123).abs() < 1e-12);
        assert!((d.round_value(v) - v).abs() < 1e-3);
    }

    #[test]
    fn wrapped_model_rounds_scores() {
        let w = Matrix::from_rows(&[vec![1.0], vec![1.0]]).unwrap();
        let model = LogisticRegression::from_parameters(w, vec![0.0], 2);
        let defended = RoundedModel::new(model, RoundingDefense::coarse());
        let p = defended.predict_proba(&Matrix::from_rows(&[vec![0.3, 0.4]]).unwrap());
        // Every score has at most one decimal digit.
        for &v in p.as_slice() {
            assert!(((v * 10.0) - (v * 10.0).round()).abs() < 1e-12, "score {v}");
        }
        assert_eq!(defended.n_classes(), 2);
        assert_eq!(defended.n_features(), 2);
    }

    #[test]
    fn coarse_rounding_may_zero_scores() {
        let d = RoundingDefense::coarse();
        assert_eq!(d.round_value(0.049), 0.0);
    }
}
