//! Gaussian noise injection on confidence scores.
//!
//! An additional countermeasure beyond the paper's evaluated pair
//! (Section VII discusses randomization in the DP context and dismisses
//! *formal* DP as utility-destroying; calibrated light noise is the
//! practical middle ground). Scores are perturbed with `N(0, σ²)`,
//! clamped to `[0, 1]` and re-normalized to sum to one, so the released
//! vector is still a distribution.
//!
//! The ablation bench shows the expected spectrum: enough noise breaks
//! ESA's exact equations (like coarse rounding does) but GRNA degrades
//! only gradually, since the generator learns from many noisy outputs.

use fia_linalg::Matrix;
use fia_models::PredictProba;
use fia_tensor::standard_normal;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

/// Gaussian-noise defense configuration.
#[derive(Debug, Clone, Copy)]
pub struct NoiseDefense {
    /// Noise standard deviation σ.
    pub sigma: f64,
    /// RNG seed (the defense is stochastic; deployments would use an
    /// entropy source, experiments want determinism).
    pub seed: u64,
}

impl NoiseDefense {
    /// Creates the defense with noise level `sigma`.
    pub fn new(sigma: f64, seed: u64) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        NoiseDefense { sigma, seed }
    }

    /// Perturbs a confidence matrix row-wise (clamp + renormalize).
    pub fn perturb(&self, scores: &Matrix) -> Matrix {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut out = scores.clone();
        for i in 0..out.rows() {
            let row = out.row_mut(i);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v + self.sigma * standard_normal(&mut rng)).clamp(0.0, 1.0);
                sum += *v;
            }
            if sum > 0.0 {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            } else {
                // All mass clipped away: release the uninformative uniform.
                let c = row.len() as f64;
                for v in row.iter_mut() {
                    *v = 1.0 / c;
                }
            }
        }
        out
    }
}

/// Model wrapper applying the noise defense at the protocol boundary.
///
/// Interior mutability (a mutex around the RNG stream counter) keeps the
/// [`PredictProba`] interface unchanged while every prediction draws
/// fresh noise.
pub struct NoisyModel<M: PredictProba> {
    inner: M,
    sigma: f64,
    rng: Mutex<StdRng>,
}

impl<M: PredictProba> NoisyModel<M> {
    /// Wraps `inner` with noise level `sigma`.
    pub fn new(inner: M, sigma: f64, seed: u64) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        NoisyModel {
            inner,
            sigma,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
        }
    }

    /// The undefended model.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<M: PredictProba> PredictProba for NoisyModel<M> {
    fn predict_proba(&self, x: &Matrix) -> Matrix {
        let clean = self.inner.predict_proba(x);
        let mut rng = self.rng.lock().expect("rng mutex poisoned");
        let mut out = clean;
        for i in 0..out.rows() {
            let row = out.row_mut(i);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v + self.sigma * standard_normal(&mut *rng)).clamp(0.0, 1.0);
                sum += *v;
            }
            if sum > 0.0 {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            } else {
                let c = row.len() as f64;
                for v in row.iter_mut() {
                    *v = 1.0 / c;
                }
            }
        }
        out
    }

    fn n_features(&self) -> usize {
        self.inner.n_features()
    }

    fn n_classes(&self) -> usize {
        self.inner.n_classes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fia_models::LogisticRegression;

    fn toy_model() -> LogisticRegression {
        let w = Matrix::from_fn(3, 3, |i, j| 0.3 * (i as f64 + 1.0) - 0.2 * j as f64);
        LogisticRegression::from_parameters(w, vec![0.0; 3], 3)
    }

    #[test]
    fn perturbed_rows_remain_distributions() {
        let model = toy_model();
        let x = Matrix::from_fn(20, 3, |i, j| ((i + j) % 5) as f64 / 5.0);
        let clean = model.predict_proba(&x);
        let noisy = NoiseDefense::new(0.05, 7).perturb(&clean);
        for i in 0..noisy.rows() {
            let s: f64 = noisy.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "row {i} sums to {s}");
            assert!(noisy.row(i).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn zero_sigma_is_identity() {
        let model = toy_model();
        let x = Matrix::from_fn(5, 3, |i, j| (i * 3 + j) as f64 / 15.0);
        let clean = model.predict_proba(&x);
        let noisy = NoiseDefense::new(0.0, 1).perturb(&clean);
        assert!(noisy.max_abs_diff(&clean).unwrap() < 1e-12);
    }

    #[test]
    fn noise_magnitude_scales_with_sigma() {
        let model = toy_model();
        let x = Matrix::from_fn(50, 3, |i, j| ((i * 2 + j) % 7) as f64 / 7.0);
        let clean = model.predict_proba(&x);
        let small = NoiseDefense::new(0.01, 3).perturb(&clean);
        let large = NoiseDefense::new(0.2, 3).perturb(&clean);
        let dev = |m: &Matrix| {
            m.as_slice()
                .iter()
                .zip(clean.as_slice())
                .map(|(&a, &b)| (a - b).abs())
                .sum::<f64>()
        };
        assert!(dev(&large) > 3.0 * dev(&small));
    }

    #[test]
    fn noisy_model_wrapper_changes_scores() {
        let model = toy_model();
        let x = Matrix::from_fn(4, 3, |i, j| (i + j) as f64 / 6.0);
        let clean = model.predict_proba(&x);
        let defended = NoisyModel::new(model, 0.1, 9);
        let noisy = defended.predict_proba(&x);
        assert_eq!(noisy.shape(), clean.shape());
        assert!(noisy.max_abs_diff(&clean).unwrap() > 1e-3);
        assert_eq!(defended.n_classes(), 3);
    }
}
