//! Integration tests for defended deployments: the countermeasure
//! wrappers must compose with the VFL protocol and the attack suite
//! end-to-end.

use fia::attacks::{
    metrics, Attack, AttackEngine, EqualitySolvingAttack, Grna, GrnaConfig, QueryBatch,
};
use fia::data::{PaperDataset, SplitSpec};
use fia::defense::{
    DefensePipeline, NoiseDefense, NoisyModel, RoundedModel, RoundingDefense, ScoreDefense,
};
use fia::models::{LogisticRegression, LrConfig, Mlp, MlpConfig, PredictProba};
use fia::vfl::{AdversaryView, ThreatModel, VerticalPartition, VflSystem};

fn deployment(
    seed: u64,
) -> (
    fia::data::ThreeWaySplit,
    VerticalPartition,
    LogisticRegression,
) {
    let ds = PaperDataset::DriveDiagnosis.generate(0.008, seed);
    let split = ds.split(&SplitSpec::paper_default(), seed);
    let partition = VerticalPartition::two_block_random(ds.n_features(), 0.2, seed);
    let model = LogisticRegression::fit(&split.train, &LrConfig::default());
    (split, partition, model)
}

#[test]
fn rounded_model_through_protocol_degrades_esa() {
    let (split, partition, model) = deployment(41);
    let attack_model = model.clone();

    // Deploy the *defended* model: the protocol only ever reveals rounded
    // scores.
    let defended = RoundedModel::new(model, RoundingDefense::coarse());
    let system = VflSystem::from_global(defended, partition, &split.prediction.features);
    let view = AdversaryView::collect(&system, &ThreatModel::active_only());
    // Every observed score has one decimal digit.
    for &v in view.confidences.as_slice() {
        assert!(((v * 10.0) - (v * 10.0).round()).abs() < 1e-9);
    }

    let truth = split
        .prediction
        .features
        .select_columns(&view.target_indices)
        .unwrap();
    let attack = EqualitySolvingAttack::new(&attack_model, &view.adv_indices, &view.target_indices);
    let est = attack
        .infer_batch(&QueryBatch::new(
            view.x_adv.clone(),
            view.confidences.clone(),
        ))
        .estimates
        .map(|v| v.clamp(0.0, 1.0));
    let mse = metrics::mse_per_feature(&est, &truth);
    // Undefended this deployment is exact (d_target ≤ c − 1); rounding
    // must push it far from exactness.
    assert!(mse > 0.05, "defended ESA mse {mse} suspiciously low");
}

#[test]
fn noisy_model_through_protocol_still_feeds_grna() {
    let (split, partition, model) = deployment(43);
    let attack_model = model.clone();
    let defended = NoisyModel::new(model, 0.02, 7);
    let system = VflSystem::from_global(defended, partition, &split.prediction.features);
    let view = AdversaryView::collect(&system, &ThreatModel::active_only());

    // Scores are still distributions after noise + renormalization.
    for i in 0..view.confidences.rows() {
        let s: f64 = view.confidences.row(i).iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    let truth = split
        .prediction
        .features
        .select_columns(&view.target_indices)
        .unwrap();
    let mut cfg = GrnaConfig::fast().with_seed(43);
    cfg.hidden = vec![48, 24];
    cfg.epochs = 40;
    cfg.lr = 3e-3;
    let grna = Grna::new(&attack_model, &view.adv_indices, &view.target_indices, cfg);
    let generator = grna
        .train(&view.x_adv, &view.confidences)
        .with_infer_seed(2);
    let result = AttackEngine::new().run(
        &generator,
        &QueryBatch::new(view.x_adv.clone(), view.confidences.clone()),
    );
    let grna_mse = result.mse_against(&truth);
    let rg = fia::attacks::baseline::random_guess_uniform(truth.rows(), truth.cols(), 3);
    let rg_mse = metrics::mse_per_feature(&rg, &truth);
    assert!(
        grna_mse < rg_mse,
        "GRNA should survive light noise: {grna_mse} vs rg {rg_mse}"
    );
}

#[test]
fn batched_defense_pipeline_composes_at_the_protocol_boundary() {
    // A rounding+noise pipeline applied to a whole released round must
    // degrade batched ESA the same way the individually-wrapped defenses
    // do — the batch hook and the per-record wrappers are one mechanism.
    let (split, partition, model) = deployment(53);
    let attack_model = model.clone();
    let system = VflSystem::from_global(model, partition, &split.prediction.features);
    let view = AdversaryView::collect(&system, &ThreatModel::active_only());
    let truth = split
        .prediction
        .features
        .select_columns(&view.target_indices)
        .unwrap();

    let pipeline = DefensePipeline::new()
        .then(NoiseDefense::new(0.01, 77))
        .then(RoundingDefense::coarse());
    let released = pipeline.defend_batch(&view.confidences);
    assert_eq!(released.shape(), view.confidences.shape());

    let attack = EqualitySolvingAttack::new(&attack_model, &view.adv_indices, &view.target_indices);
    let clean_mse = attack
        .infer_batch(&QueryBatch::new(
            view.x_adv.clone(),
            view.confidences.clone(),
        ))
        .mse_against(&truth);
    let defended = attack
        .infer_batch(&QueryBatch::new(view.x_adv.clone(), released))
        .estimates
        .map(|v| v.clamp(0.0, 1.0));
    let defended_mse = metrics::mse_per_feature(&defended, &truth);
    assert!(clean_mse < 1e-6, "undefended ESA should be exact here");
    assert!(
        defended_mse > 100.0 * (clean_mse + 1e-6),
        "pipeline should break exactness: {defended_mse}"
    );
}

#[test]
fn persisted_mlp_attacks_identically() {
    // Save/load the vertical FL NN, then verify GRNA behaves identically
    // against the restored copy — persistence must be attack-transparent.
    let ds = PaperDataset::CreditCard.generate(0.008, 47);
    let split = ds.split(&SplitSpec::paper_default(), 47);
    let model = Mlp::fit(
        &split.train,
        &MlpConfig {
            epochs: 4,
            ..MlpConfig::fast()
        },
    );
    let restored = Mlp::from_bytes(&model.to_bytes()).unwrap();

    let partition = VerticalPartition::two_block_random(ds.n_features(), 0.3, 47);
    let adv = partition.features_of(fia::vfl::PartyId(0)).to_vec();
    let target = partition.features_of(fia::vfl::PartyId(1)).to_vec();
    let x_adv = split.prediction.features.select_columns(&adv).unwrap();
    let conf_a = model.predict_proba(&split.prediction.features);
    let conf_b = restored.predict_proba(&split.prediction.features);
    assert!(conf_a.max_abs_diff(&conf_b).unwrap() < 1e-15);

    let mut cfg = GrnaConfig::fast().with_seed(47);
    cfg.hidden = vec![32, 16];
    cfg.epochs = 10;
    let est_a = Grna::new(&model, &adv, &target, cfg.clone())
        .train(&x_adv, &conf_a)
        .infer(&x_adv, 9);
    let est_b = Grna::new(&restored, &adv, &target, cfg)
        .train(&x_adv, &conf_b)
        .infer(&x_adv, 9);
    assert!(est_a.max_abs_diff(&est_b).unwrap() < 1e-12);
}
