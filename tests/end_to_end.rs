//! Cross-crate integration tests through the public `fia` facade.
//!
//! The attack pipeline (dataset → split → partition → train → deploy →
//! query → invert → evaluate) runs entirely through the campaign API —
//! the same typed surface the examples and future scenario sweeps use.
//! The protocol-substrate tests at the bottom exercise `VflSystem`
//! directly: they verify the deployment the campaigns stand on, not
//! scenario wiring.

use fia::attacks::{baseline, metrics, GrnaConfig};
use fia::campaign::{AttackSpec, Campaign, ModelSpec, NullObserver, PartitionSpec, ScenarioSpec};
use fia::data::{PaperDataset, SplitSpec};
use fia::defense::{DefensePipeline, RoundingDefense};
use fia::models::{
    accuracy, DecisionTree, LogisticRegression, LrConfig, Mlp, MlpConfig, RandomForest, TreeConfig,
};
use fia::vfl::{PartyId, ThreatModel, VerticalPartition, VflSystem};
use rand::{rngs::StdRng, SeedableRng};

#[test]
fn campaign_fed_esa_is_exact() {
    // Drive has 11 classes: with d_target ≤ 10 the ESA campaign run
    // entirely through the prediction protocol must be exact.
    let scenario = ScenarioSpec::paper(PaperDataset::DriveDiagnosis)
        .with_scale(0.008)
        .with_partition(PartitionSpec::two_block_random(0.2))
        .with_seed(11)
        .build();
    assert!(scenario.data().d_target() <= 10);
    let mut campaign = Campaign::new(scenario).with_attack(AttackSpec::esa());
    let report = campaign.run(&mut NullObserver).unwrap();
    assert!(report.outcome.is_complete());
    let esa = report.attack("esa").unwrap();
    assert_eq!(esa.degraded_rows, 0);
    assert!(
        esa.mse < 1e-8,
        "campaign-fed ESA should be exact, mse = {}",
        esa.mse
    );
    // The report meters what the corpus cost the deployment.
    assert_eq!(report.cost.rows as usize, report.rows_done);
}

#[test]
fn colluding_coalition_shrinks_target() {
    // Three parties; the active party colluding with P3 leaves only
    // P2's features unknown, and the resolved scenario reflects that.
    let solo = ScenarioSpec::paper(PaperDataset::CreditCard)
        .with_scale(0.008)
        .with_partition(PartitionSpec::contiguous(&[9, 7, 7]))
        .with_seed(3)
        .materialize();
    let coalition = ScenarioSpec::paper(PaperDataset::CreditCard)
        .with_scale(0.008)
        .with_partition(PartitionSpec::contiguous(&[9, 7, 7]))
        .with_threat(ThreatModel::with_colluders(&[PartyId(2)]))
        .with_seed(3)
        .materialize();
    assert_eq!(solo.d_target(), 14);
    assert_eq!(coalition.d_target(), 7);
    // More colluders → more known features → strictly easier GRNA task.
    assert!(coalition.x_adv.cols() > solo.x_adv.cols());
}

#[test]
fn campaign_grna_beats_random_guess() {
    let mut cfg = GrnaConfig::fast().with_seed(5);
    cfg.hidden = vec![48, 24];
    cfg.epochs = 40;
    cfg.lr = 3e-3;
    let scenario = ScenarioSpec::paper(PaperDataset::CreditCard)
        .with_scale(0.008)
        .with_partition(PartitionSpec::two_block_random(0.3))
        .with_seed(5)
        .build();
    let truth = scenario.data().truth.clone();
    let mut campaign = Campaign::new(scenario).with_attack(AttackSpec::grna(cfg));
    let report = campaign.run(&mut NullObserver).unwrap();
    let grna_mse = report.attack("grna").unwrap().mse;
    let rg = baseline::random_guess_uniform(truth.rows(), truth.cols(), 2);
    let rg_mse = metrics::mse_per_feature(&rg, &truth);
    assert!(
        grna_mse < 0.8 * rg_mse,
        "grna {grna_mse} vs random {rg_mse}"
    );
}

#[test]
fn rounding_defense_campaign_breaks_esa() {
    // The same scenario with and without coarse rounding at the release
    // boundary — the defense rides inside the spec, nothing else moves.
    let spec = ScenarioSpec::paper(PaperDataset::DriveDiagnosis)
        .with_scale(0.008)
        .with_partition(PartitionSpec::two_block_random(0.2))
        .with_seed(13);
    let mut clean_campaign = Campaign::new(spec.clone().build()).with_attack(AttackSpec::esa());
    let clean = clean_campaign.run(&mut NullObserver).unwrap();
    let clean_esa = clean.attack("esa").unwrap();
    assert!(
        clean_esa.mse < 1e-6,
        "undefended exact, got {}",
        clean_esa.mse
    );

    let defended_scenario = spec
        .with_defense(DefensePipeline::new().then(RoundingDefense::coarse()))
        .build();
    let mut defended_campaign = Campaign::new(defended_scenario).with_attack(AttackSpec::esa());
    let defended = defended_campaign.run(&mut NullObserver).unwrap();
    let defended_esa = defended.attack("esa").unwrap();
    // Coarse rounding zeroes scores: the campaign must report
    // degradation and the exactness must be destroyed.
    assert!(
        defended_esa.degraded_rows > 0,
        "rounded corpus should mark degraded rows"
    );
    assert!(
        defended_esa.mse > 100.0 * (clean_esa.mse + 1e-6),
        "rounding should destroy exactness: {}",
        defended_esa.mse
    );
}

#[test]
fn campaign_pra_runs_tree_scenarios_through_the_protocol() {
    let scenario = ScenarioSpec::paper(PaperDataset::CreditCard)
        .with_scale(0.008)
        .with_model(ModelSpec::DecisionTree(TreeConfig::paper_dt()))
        .with_seed(21)
        .build();
    let truth = scenario.data().truth.clone();
    let mut campaign = Campaign::new(scenario).with_attack(AttackSpec::pra());
    let report = campaign.run(&mut NullObserver).unwrap();
    let pra = report.attack("pra").unwrap();
    assert_eq!(pra.estimates.shape(), (truth.rows(), truth.cols()));
    // Midpoint estimates over restricted paths beat uniform guessing.
    let rg = baseline::random_guess_uniform(truth.rows(), truth.cols(), 4);
    let rg_mse = metrics::mse_per_feature(&rg, &truth);
    assert!(pra.mse < 1.1 * rg_mse, "pra {} vs random {rg_mse}", pra.mse);
}

// ---------------------------------------------------------------------
// Protocol substrate (what the campaigns stand on).

#[test]
fn all_four_model_families_run_through_the_protocol() {
    let ds = PaperDataset::CreditCard.generate(0.008, 21);
    let split = ds.split(&SplitSpec::paper_default(), 21);
    let partition = VerticalPartition::two_block_random(ds.n_features(), 0.3, 21);

    // LR
    let lr = LogisticRegression::fit(
        &split.train,
        &LrConfig {
            epochs: 10,
            ..Default::default()
        },
    );
    let sys = VflSystem::from_global(lr, partition.clone(), &split.prediction.features);
    assert_eq!(sys.predict(0).len(), 2);

    // NN
    let mlp = Mlp::fit(
        &split.train,
        &MlpConfig {
            epochs: 3,
            ..MlpConfig::fast()
        },
    );
    let sys = VflSystem::from_global(mlp, partition.clone(), &split.prediction.features);
    assert!((sys.predict(1).iter().sum::<f64>() - 1.0).abs() < 1e-9);

    // DT — one-hot confidences.
    let mut rng = StdRng::seed_from_u64(21);
    let tree = DecisionTree::fit(&split.train, &TreeConfig::paper_dt(), &mut rng);
    let sys = VflSystem::from_global(tree, partition.clone(), &split.prediction.features);
    let v = sys.predict(2);
    assert_eq!(v.iter().filter(|&&x| x == 1.0).count(), 1);

    // RF — vote fractions.
    let forest = RandomForest::fit(
        &split.train,
        &fia::models::ForestConfig {
            n_trees: 8,
            ..fia::models::ForestConfig::default()
        },
    );
    let sys = VflSystem::from_global(forest, partition, &split.prediction.features);
    let v = sys.predict(3);
    assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    for x in v {
        assert!((x * 8.0 - (x * 8.0).round()).abs() < 1e-9);
    }
}

#[test]
fn batched_protocol_round_matches_per_sample_protocol() {
    // The scale path: one protocol round answering n queries must reveal
    // exactly what n single-query rounds would.
    let ds = PaperDataset::CreditCard.generate(0.008, 9);
    let split = ds.split(&SplitSpec::paper_default(), 9);
    let partition = VerticalPartition::two_block_random(ds.n_features(), 0.3, 9);
    let model = LogisticRegression::fit(&split.train, &LrConfig::default());
    let system = VflSystem::from_global(model, partition, &split.prediction.features);
    let indices: Vec<usize> = (0..system.n_samples().min(40)).collect();
    let round = system.predict_batch(&indices);
    assert_eq!(round.shape(), (indices.len(), 2));
    for (row, &i) in indices.iter().enumerate() {
        let single = system.predict(i);
        for (j, &v) in single.iter().enumerate() {
            assert!((round[(row, j)] - v).abs() < 1e-15, "sample {i} class {j}");
        }
    }
}

#[test]
fn trained_models_generalize_to_test_split() {
    // End-to-end sanity that the substrate models actually learn the
    // synthetic tasks (guards against silently broken training loops).
    let ds = PaperDataset::CreditCard.generate(0.01, 31);
    let split = ds.split(&SplitSpec::paper_default(), 31);
    let lr = LogisticRegression::fit(&split.train, &LrConfig::default());
    let acc = accuracy(&lr, &split.test.features, &split.test.labels);
    assert!(acc > 0.7, "LR test accuracy {acc}");

    let mut rng = StdRng::seed_from_u64(31);
    let tree = DecisionTree::fit(&split.train, &TreeConfig::paper_dt(), &mut rng);
    let acc = accuracy(&tree, &split.test.features, &split.test.labels);
    assert!(acc > 0.6, "DT test accuracy {acc}");
}
