//! Cross-crate integration tests: the full pipeline from dataset
//! generation through the VFL prediction protocol to each attack and the
//! defenses — everything wired through the public `fia` facade.

use fia::attacks::{
    baseline, metrics, Attack, AttackEngine, EqualitySolvingAttack, Grna, GrnaConfig, QueryBatch,
};
use fia::data::{PaperDataset, SplitSpec};
use fia::defense::RoundingDefense;
use fia::models::{
    accuracy, DecisionTree, LogisticRegression, LrConfig, Mlp, MlpConfig, RandomForest, TreeConfig,
};
use fia::vfl::{AdversaryView, PartyId, ThreatModel, VerticalPartition, VflSystem};
use rand::{rngs::StdRng, SeedableRng};

/// The adversary's accumulated stream as an engine-ready batch.
fn batch_of(view: &AdversaryView) -> QueryBatch {
    QueryBatch::new(view.x_adv.clone(), view.confidences.clone())
}

/// Shared fixture: dataset + split + partition at tiny scale.
fn fixture(
    dataset: PaperDataset,
    target_fraction: f64,
    seed: u64,
) -> (fia::data::ThreeWaySplit, VerticalPartition) {
    let ds = dataset.generate(0.008, seed);
    let split = ds.split(&SplitSpec::paper_default(), seed);
    let partition = VerticalPartition::two_block_random(ds.n_features(), target_fraction, seed);
    (split, partition)
}

#[test]
fn protocol_collected_view_feeds_esa() {
    // Drive has 11 classes: with d_target ≤ 10 the attack run entirely
    // through the protocol-collected adversary view must be exact.
    let (split, partition) = fixture(PaperDataset::DriveDiagnosis, 0.2, 11);
    let model = LogisticRegression::fit(&split.train, &LrConfig::default());
    let system = VflSystem::from_global(model, partition, &split.prediction.features);
    let view = AdversaryView::collect(&system, &ThreatModel::active_only());
    assert!(view.d_target() <= 10);

    let attack =
        EqualitySolvingAttack::new(system.model(), &view.adv_indices, &view.target_indices);
    assert!(attack.exact_recovery_expected());
    let result = AttackEngine::new().run(&attack, &batch_of(&view));
    assert!(result.degraded_rows.is_empty());
    let truth = split
        .prediction
        .features
        .select_columns(&view.target_indices)
        .unwrap();
    let mse = result.mse_against(&truth);
    assert!(mse < 1e-8, "protocol-fed ESA should be exact, mse = {mse}");
}

#[test]
fn colluding_coalition_shrinks_target() {
    // Three parties; the active party colluding with P3 leaves only P2's
    // features unknown, and the attack view reflects that.
    let ds = PaperDataset::CreditCard.generate(0.008, 3);
    let split = ds.split(&SplitSpec::paper_default(), 3);
    let d = ds.n_features();
    let partition = VerticalPartition::contiguous(&[d - 14, 7, 7]);
    let model = LogisticRegression::fit(&split.train, &LrConfig::default());
    let system = VflSystem::from_global(model, partition, &split.prediction.features);

    let solo = AdversaryView::collect(&system, &ThreatModel::active_only());
    let coalition = AdversaryView::collect(&system, &ThreatModel::with_colluders(&[PartyId(2)]));
    assert_eq!(solo.d_target(), 14);
    assert_eq!(coalition.d_target(), 7);
    // More colluders → more known features → strictly easier GRNA task.
    assert!(coalition.x_adv.cols() > solo.x_adv.cols());
}

#[test]
fn grna_through_protocol_beats_random_guess() {
    let (split, partition) = fixture(PaperDataset::CreditCard, 0.3, 5);
    let model = LogisticRegression::fit(&split.train, &LrConfig::default());
    let system = VflSystem::from_global(model, partition, &split.prediction.features);
    let view = AdversaryView::collect(&system, &ThreatModel::active_only());

    let mut cfg = GrnaConfig::fast().with_seed(5);
    cfg.hidden = vec![48, 24];
    cfg.epochs = 40;
    cfg.lr = 3e-3;
    let grna = Grna::new(system.model(), &view.adv_indices, &view.target_indices, cfg);
    let generator = grna
        .train(&view.x_adv, &view.confidences)
        .with_infer_seed(1);
    let result = AttackEngine::new().run(&generator, &batch_of(&view));

    let truth = split
        .prediction
        .features
        .select_columns(&view.target_indices)
        .unwrap();
    let grna_mse = result.mse_against(&truth);
    let rg = baseline::random_guess_uniform(truth.rows(), truth.cols(), 2);
    let rg_mse = metrics::mse_per_feature(&rg, &truth);
    assert!(
        grna_mse < 0.8 * rg_mse,
        "grna {grna_mse} vs random {rg_mse}"
    );
}

#[test]
fn rounding_defense_breaks_esa_but_not_structure() {
    let (split, partition) = fixture(PaperDataset::DriveDiagnosis, 0.2, 13);
    let model = LogisticRegression::fit(&split.train, &LrConfig::default());
    let attack_model = model.clone();
    let system = VflSystem::from_global(model, partition, &split.prediction.features);
    let view = AdversaryView::collect(&system, &ThreatModel::active_only());
    let truth = split
        .prediction
        .features
        .select_columns(&view.target_indices)
        .unwrap();

    let attack = EqualitySolvingAttack::new(&attack_model, &view.adv_indices, &view.target_indices);
    let clean = attack.infer_batch(&batch_of(&view));
    let clean_mse = clean.mse_against(&truth);

    let rounded = RoundingDefense::coarse().round_matrix(&view.confidences);
    let defended_result = attack.infer_batch(&QueryBatch::new(view.x_adv.clone(), rounded));
    let defended = defended_result.estimates.map(|v| v.clamp(0.0, 1.0));
    let defended_mse = metrics::mse_per_feature(&defended, &truth);
    assert!(clean_mse < 1e-6, "undefended exact, got {clean_mse}");
    // Coarse rounding zeroes scores: the batch must report degradation.
    assert!(
        !defended_result.degraded_rows.is_empty(),
        "rounded batch should mark degraded rows"
    );
    assert!(
        defended_mse > 100.0 * (clean_mse + 1e-6),
        "rounding should destroy exactness: {defended_mse}"
    );
}

#[test]
fn all_four_model_families_run_through_the_protocol() {
    let ds = PaperDataset::CreditCard.generate(0.008, 21);
    let split = ds.split(&SplitSpec::paper_default(), 21);
    let partition = VerticalPartition::two_block_random(ds.n_features(), 0.3, 21);

    // LR
    let lr = LogisticRegression::fit(
        &split.train,
        &LrConfig {
            epochs: 10,
            ..Default::default()
        },
    );
    let sys = VflSystem::from_global(lr, partition.clone(), &split.prediction.features);
    assert_eq!(sys.predict(0).len(), 2);

    // NN
    let mlp = Mlp::fit(
        &split.train,
        &MlpConfig {
            epochs: 3,
            ..MlpConfig::fast()
        },
    );
    let sys = VflSystem::from_global(mlp, partition.clone(), &split.prediction.features);
    assert!((sys.predict(1).iter().sum::<f64>() - 1.0).abs() < 1e-9);

    // DT — one-hot confidences.
    let mut rng = StdRng::seed_from_u64(21);
    let tree = DecisionTree::fit(&split.train, &TreeConfig::paper_dt(), &mut rng);
    let sys = VflSystem::from_global(tree, partition.clone(), &split.prediction.features);
    let v = sys.predict(2);
    assert_eq!(v.iter().filter(|&&x| x == 1.0).count(), 1);

    // RF — vote fractions.
    let forest = RandomForest::fit(
        &split.train,
        &fia::models::ForestConfig {
            n_trees: 8,
            ..fia::models::ForestConfig::default()
        },
    );
    let sys = VflSystem::from_global(forest, partition, &split.prediction.features);
    let v = sys.predict(3);
    assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    for x in v {
        assert!((x * 8.0 - (x * 8.0).round()).abs() < 1e-9);
    }
}

#[test]
fn batched_protocol_round_matches_per_sample_protocol() {
    // The scale path: one protocol round answering n queries must reveal
    // exactly what n single-query rounds would.
    let (split, partition) = fixture(PaperDataset::CreditCard, 0.3, 9);
    let model = LogisticRegression::fit(&split.train, &LrConfig::default());
    let system = VflSystem::from_global(model, partition, &split.prediction.features);
    let indices: Vec<usize> = (0..system.n_samples().min(40)).collect();
    let round = system.predict_batch(&indices);
    assert_eq!(round.shape(), (indices.len(), 2));
    for (row, &i) in indices.iter().enumerate() {
        let single = system.predict(i);
        for (j, &v) in single.iter().enumerate() {
            assert!((round[(row, j)] - v).abs() < 1e-15, "sample {i} class {j}");
        }
    }
}

#[test]
fn trained_models_generalize_to_test_split() {
    // End-to-end sanity that the substrate models actually learn the
    // synthetic tasks (guards against silently broken training loops).
    let ds = PaperDataset::CreditCard.generate(0.01, 31);
    let split = ds.split(&SplitSpec::paper_default(), 31);
    let lr = LogisticRegression::fit(&split.train, &LrConfig::default());
    let acc = accuracy(&lr, &split.test.features, &split.test.labels);
    assert!(acc > 0.7, "LR test accuracy {acc}");

    let mut rng = StdRng::seed_from_u64(31);
    let tree = DecisionTree::fit(&split.train, &TreeConfig::paper_dt(), &mut rng);
    let acc = accuracy(&tree, &split.test.features, &split.test.labels);
    assert!(acc > 0.6, "DT test accuracy {acc}");
}
