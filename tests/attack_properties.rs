//! Property-based tests on the attacks' core guarantees, spanning crates.
//!
//! Cases are driven by a seeded [`rand::rngs::StdRng`] sweep (the offline
//! build has no `proptest`); each case is reproducible from its index.

use fia::attacks::{
    metrics, Attack, AttackEngine, EqualitySolvingAttack, PathRestrictionAttack, QueryBatch,
};
use fia::data::{make_classification, normalize_dataset, SynthConfig};
use fia::linalg::Matrix;
use fia::models::{DecisionTree, LogisticRegression, PredictProba, TreeConfig};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn case_rng(test: u64, case: u64) -> StdRng {
    StdRng::seed_from_u64(test.wrapping_mul(0x9E3779B97F4A7C15) ^ case)
}

/// Random full-rank-ish LR model via an LCG keyed on `seed`.
fn random_lr(d: usize, c: usize, seed: u64) -> LogisticRegression {
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    };
    let w = Matrix::from_fn(d, c, |_, _| next());
    let b = (0..c).map(|_| 0.1 * next()).collect();
    LogisticRegression::from_parameters(w, b, c)
}

/// ESA exactness: whenever `d_target ≤ c − 1`, any sample is recovered to
/// machine precision from a single prediction output — regardless of
/// model weights, feature values or the index split.
#[test]
fn esa_exact_below_threshold() {
    let mut checked = 0;
    for case in 0..32u64 {
        let mut rng = case_rng(1, case);
        let seed: u64 = rng.gen_range(1..10_000u64);
        let c = rng.gen_range(3..8usize);
        let d = rng.gen_range(4..12usize);
        let x: Vec<f64> = (0..d).map(|_| rng.gen_range(0.01..0.99)).collect();

        let d_target = (c - 1).min(d / 2).max(1);
        let model = random_lr(d, c, seed);
        // Interleave adv/target indices deterministically from the seed.
        let mut idx: Vec<usize> = (0..d).collect();
        let rot = (seed as usize) % d;
        idx.rotate_left(rot);
        let mut target: Vec<usize> = idx[..d_target].to_vec();
        let mut adv: Vec<usize> = idx[d_target..].to_vec();
        target.sort_unstable();
        adv.sort_unstable();

        let attack = EqualitySolvingAttack::new(&model, &adv, &target);
        if !attack.exact_recovery_expected() {
            continue;
        }
        checked += 1;

        let v = model.predict_proba(&Matrix::row_vector(&x));
        let x_adv: Vec<f64> = adv.iter().map(|&f| x[f]).collect();
        // Single-record compatibility wrapper of the batch-first API.
        let est = attack.infer_one(&x_adv, v.row(0));
        for (k, &f) in target.iter().enumerate() {
            // Exactness holds unless the random Θ happens to be
            // near-singular; tolerate tiny conditioning noise.
            assert!(
                (est[k] - x[f]).abs() < 1e-5,
                "feature {f}: est {} vs true {} (case {case})",
                est[k],
                x[f]
            );
        }
    }
    assert!(checked > 10, "too few exact-recovery cases exercised");
}

/// ESA minimum-norm property: the estimate never has a larger L2 norm
/// than the ground truth (Eqn 11) when the system is underdetermined,
/// and consequently the Eqn 15 MSE bound holds.
#[test]
fn esa_min_norm_bound() {
    for case in 0..32u64 {
        let mut rng = case_rng(2, case);
        let seed: u64 = rng.gen_range(1..10_000u64);
        let x: Vec<f64> = (0..10).map(|_| rng.gen_range(0.01..0.99)).collect();

        let d = 10;
        let c = 2; // 1 equation, 5 unknowns → underdetermined
        let model = random_lr(d, c, seed);
        let adv: Vec<usize> = (0..5).collect();
        let target: Vec<usize> = (5..10).collect();
        let attack = EqualitySolvingAttack::new(&model, &adv, &target);

        let v = model.predict_proba(&Matrix::row_vector(&x));
        let x_adv = &x[..5];
        let est = attack.infer(x_adv, v.row(0));
        let est_norm: f64 = est.iter().map(|e| e * e).sum();
        let true_norm: f64 = x[5..].iter().map(|e| e * e).sum();
        assert!(
            est_norm <= true_norm + 1e-9,
            "min-norm violated: {est_norm} > {true_norm}"
        );

        let est_m = Matrix::row_vector(&est);
        let truth_m = Matrix::row_vector(&x[5..]);
        assert!(
            metrics::mse_per_feature(&est_m, &truth_m) <= metrics::esa_upper_bound(&truth_m) + 1e-9
        );
    }
}

/// Engine invariance: striping a batch across any worker count yields
/// exactly the estimates of a direct single-stripe call, for both ESA
/// and PRA.
#[test]
fn engine_striping_never_changes_estimates() {
    for case in 0..8u64 {
        let mut rng = case_rng(3, case);
        let seed: u64 = rng.gen_range(1..10_000u64);
        let model = random_lr(9, 4, seed);
        let adv: Vec<usize> = vec![0, 2, 4, 6, 8];
        let target: Vec<usize> = vec![1, 3, 5, 7];
        let attack = EqualitySolvingAttack::new(&model, &adv, &target);

        let n = 150;
        let mut x_adv = Matrix::zeros(n, 5);
        let mut conf = Matrix::zeros(n, 4);
        for i in 0..n {
            let x: Vec<f64> = (0..9).map(|_| rng.gen_range(0.01..0.99)).collect();
            let v = model.predict_proba(&Matrix::row_vector(&x));
            for (k, &f) in adv.iter().enumerate() {
                x_adv[(i, k)] = x[f];
            }
            conf.row_mut(i).copy_from_slice(v.row(0));
        }
        let batch = QueryBatch::new(x_adv, conf);
        let direct = attack.infer_batch(&batch);
        for workers in [2, 3, 5] {
            let striped = AttackEngine::with_workers(workers)
                .with_min_stripe(16)
                .run(&attack, &batch);
            assert_eq!(
                striped.estimates, direct.estimates,
                "workers = {workers}, case = {case}"
            );
        }
    }
}

fn tree_fixture(seed: u64) -> (fia::data::Dataset, DecisionTree) {
    let cfg = SynthConfig {
        n_samples: 120,
        n_features: 8,
        n_informative: 5,
        n_redundant: 2,
        n_classes: 3,
        class_sep: 1.5,
        redundant_noise: 0.3,
        flip_y: 0.05,
        shuffle_features: true,
        seed,
    };
    let ds = normalize_dataset(&make_classification(&cfg)).0;
    let mut rng = StdRng::seed_from_u64(seed);
    let tree = DecisionTree::fit(&ds, &TreeConfig::paper_dt(), &mut rng);
    (ds, tree)
}

/// PRA soundness: the true decision path always survives restriction
/// when the attack is given the true predicted class, for arbitrary
/// trained trees and samples.
#[test]
fn pra_never_loses_true_path() {
    for case in 0..16u64 {
        let mut rng = case_rng(4, case);
        let seed: u64 = rng.gen_range(1..5_000u64);
        let frac = rng.gen_range(0.2f64..0.7);

        let (ds, tree) = tree_fixture(seed);
        let d_target = ((8.0 * frac) as usize).clamp(1, 7);
        let target: Vec<usize> = (0..d_target).collect();
        let adv: Vec<usize> = (d_target..8).collect();
        let attack = PathRestrictionAttack::new(&tree, &adv, &target);

        for i in 0..10 {
            let x = ds.sample(i);
            let class = tree.predict_one(x);
            let true_leaf = *tree.decision_path(x).last().unwrap();
            let x_adv: Vec<f64> = adv.iter().map(|&f| x[f]).collect();
            let leaves = attack.restricted_leaves(&x_adv, class);
            assert!(
                leaves.contains(&true_leaf),
                "true leaf {true_leaf} lost (candidates {leaves:?})"
            );
        }
    }
}

/// PRA constraints along the *true* path are always satisfied by the
/// ground truth — a correctness invariant of the constraint extraction.
#[test]
fn pra_true_path_constraints_hold() {
    for case in 0..16u64 {
        let mut rng = case_rng(5, case);
        let seed: u64 = rng.gen_range(1..5_000u64);
        let cfg = SynthConfig {
            n_samples: 100,
            n_features: 6,
            n_informative: 4,
            n_redundant: 1,
            n_classes: 2,
            class_sep: 1.5,
            redundant_noise: 0.3,
            flip_y: 0.0,
            shuffle_features: false,
            seed,
        };
        let ds = normalize_dataset(&make_classification(&cfg)).0;
        let mut tree_rng = StdRng::seed_from_u64(seed ^ 1);
        let tree = DecisionTree::fit(&ds, &TreeConfig::paper_dt(), &mut tree_rng);
        let target: Vec<usize> = vec![1, 3, 5];
        let adv: Vec<usize> = vec![0, 2, 4];
        let attack = PathRestrictionAttack::new(&tree, &adv, &target);
        for i in 0..10 {
            let x = ds.sample(i);
            let path = tree.decision_path(x);
            for c in attack.constraints_along(&path) {
                assert!(
                    c.satisfied_by(x[c.feature]),
                    "constraint {c:?} violated by true value {}",
                    x[c.feature]
                );
            }
        }
    }
}

/// PRA's batched path reports the same estimates as driving the explicit
/// per-record API with content-keyed seeds.
#[test]
fn pra_batch_is_chunk_invariant() {
    let (ds, tree) = tree_fixture(77);
    let adv: Vec<usize> = (4..8).collect();
    let target: Vec<usize> = (0..4).collect();
    let attack = PathRestrictionAttack::new(&tree, &adv, &target).with_seed(9);

    let x_adv = ds.features.select_columns(&adv).unwrap();
    let conf = tree.predict_proba(&ds.features);
    let batch = QueryBatch::new(x_adv, conf);
    let direct = attack.infer_batch(&batch);
    for workers in [2, 4] {
        let striped = AttackEngine::with_workers(workers)
            .with_min_stripe(8)
            .run(&attack, &batch);
        assert_eq!(striped.estimates, direct.estimates, "workers = {workers}");
        assert_eq!(striped.degraded_rows, direct.degraded_rows);
    }
}

/// Metric invariants: MSE is symmetric, non-negative, and zero iff the
/// matrices coincide.
#[test]
fn mse_metric_invariants() {
    for case in 0..32u64 {
        let mut rng = case_rng(6, case);
        let a: Vec<f64> = (0..12).map(|_| rng.gen_range(0.0..1.0)).collect();
        let b: Vec<f64> = (0..12).map(|_| rng.gen_range(0.0..1.0)).collect();

        let ma = Matrix::from_vec(3, 4, a).unwrap();
        let mb = Matrix::from_vec(3, 4, b).unwrap();
        let ab = metrics::mse_per_feature(&ma, &mb);
        let ba = metrics::mse_per_feature(&mb, &ma);
        assert!((ab - ba).abs() < 1e-15);
        assert!(ab >= 0.0);
        assert_eq!(metrics::mse_per_feature(&ma, &ma), 0.0);
        // Per-feature MSE averages to the scalar MSE.
        let per = metrics::per_feature_mse(&ma, &mb);
        let avg: f64 = per.iter().sum::<f64>() / per.len() as f64;
        assert!((avg - ab).abs() < 1e-12);
    }
}
