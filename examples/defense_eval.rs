//! Evaluating the Section VII countermeasures end-to-end: confidence
//! rounding (as campaigns over a defended release boundary),
//! pre-collaboration screening, and post-processing verification in a
//! simulated enclave.
//!
//! ```sh
//! cargo run --release --example defense_eval
//! ```

use fia::attacks::metrics;
use fia::campaign::{AttackSpec, Campaign, NullObserver, PartitionSpec, ScenarioSpec};
use fia::data::PaperDataset;
use fia::defense::screening::{correlation_screen, exposure_risk};
use fia::defense::verify::{LeakageVerifier, Verdict};
use fia::defense::{DefensePipeline, RoundingDefense};
use fia::models::PredictProba;

/// The shared base scenario every stage of this example varies from.
fn base_spec() -> ScenarioSpec {
    ScenarioSpec::paper(PaperDataset::DriveDiagnosis)
        .with_scale(0.01)
        .with_partition(PartitionSpec::two_block_random(0.2))
        .with_seed(3)
}

/// One campaign over the base scenario with the given defense pipeline
/// at the release boundary; returns (mse, degraded). Only the defense
/// varies, so the deterministic seed retrains a bit-identical model per
/// run — the comparison isolates the release boundary. The adversary
/// clamps its estimates into the known `(0, 1)` feature range before
/// scoring (Section III-B grants it the ranges; without the clamp a
/// defended ESA's unbounded solutions would overstate the defense).
fn esa_campaign(defense: DefensePipeline) -> (f64, usize) {
    let scenario = base_spec().with_defense(defense).build();
    let truth = scenario.data().truth.clone();
    let mut campaign = Campaign::new(scenario).with_attack(AttackSpec::esa());
    let report = campaign.run(&mut NullObserver).expect("campaign runs");
    let esa = report.attack("esa").expect("esa ran");
    let clamped = esa.estimates.map(|v| v.clamp(0.0, 1.0));
    (
        metrics::mse_per_feature(&clamped, &truth),
        esa.degraded_rows,
    )
}

fn main() {
    // Shared scenario data for the screening / verification stages.
    let spec = base_spec();
    let data = spec.materialize();

    // --- Pre-processing: exposure + correlation screening -------------
    println!("pre-collaboration checks:");
    println!(
        "  target party contributes {} features to a {}-class task → {:?}",
        data.d_target(),
        data.n_classes,
        exposure_risk(data.d_target(), data.n_classes)
    );
    let party_of: Vec<usize> = (0..data.partition.n_features())
        .map(|f| usize::from(!data.adv_indices.contains(&f)))
        .collect();
    let screen = correlation_screen(&data.train.features, &party_of, 0.8);
    println!(
        "  correlation screen (|r| > 0.8): {} risky cross-party pairs, drop candidates {:?}",
        screen.risky_pairs.len(),
        screen.drop_candidates
    );

    // --- The same campaign with and without rounding at the release
    //     boundary (the defense pipeline rides inside the scenario, so
    //     nothing else changes between runs) -------------------------
    let (clean_mse, _) = esa_campaign(DefensePipeline::new());
    println!("\nESA without defense : mse = {clean_mse:.4}");
    for defense in [RoundingDefense::fine(), RoundingDefense::coarse()] {
        let digits = defense.digits;
        let (mse, degraded) = esa_campaign(DefensePipeline::new().then(defense));
        println!("ESA with rounding b={digits} : mse = {mse:.4} ({degraded} degraded rows)");
    }

    // --- Post-processing: simulated-enclave verification -------------
    let scenario = spec.build();
    let model = scenario
        .model()
        .as_logistic()
        .expect("scenario trains logistic regression");
    let conf = model.predict_proba(&data.prediction.features);
    let verifier = LeakageVerifier::new(model, &data.adv_indices, &data.target_indices, 0.02);
    let mut withheld = 0;
    let n_check = data.n_predictions().min(100);
    for i in 0..n_check {
        let xa = data.x_adv.row(i);
        let xt = data.truth.row(i);
        if matches!(verifier.check(xa, xt, conf.row(i)), Verdict::Withheld(_)) {
            withheld += 1;
        }
    }
    println!(
        "\nenclave verification: {withheld}/{n_check} prediction outputs withheld \
         (reconstruction within 0.02 of a private value)"
    );
}
