//! Evaluating the Section VII countermeasures end-to-end: confidence
//! rounding, pre-collaboration screening, and post-processing
//! verification in a simulated enclave.
//!
//! ```sh
//! cargo run --release --example defense_eval
//! ```

use fia::attacks::{metrics, AttackEngine, EqualitySolvingAttack, QueryBatch};
use fia::data::PaperDataset;
use fia::defense::screening::{correlation_screen, exposure_risk};
use fia::defense::verify::{LeakageVerifier, Verdict};
use fia::defense::RoundingDefense;
use fia::models::{LogisticRegression, LrConfig, PredictProba};
use fia::vfl::VerticalPartition;

fn main() {
    let dataset = PaperDataset::DriveDiagnosis.generate(0.01, 3);
    let split = dataset.split(&fia::data::SplitSpec::paper_default(), 3);
    let partition = VerticalPartition::two_block_random(dataset.n_features(), 0.2, 3);
    let adv = partition.features_of(fia::vfl::PartyId(0)).to_vec();
    let target = partition.features_of(fia::vfl::PartyId(1)).to_vec();

    // --- Pre-processing: exposure + correlation screening -------------
    println!("pre-collaboration checks:");
    println!(
        "  target party contributes {} features to a {}-class task → {:?}",
        target.len(),
        dataset.n_classes,
        exposure_risk(target.len(), dataset.n_classes)
    );
    let party_of: Vec<usize> = (0..dataset.n_features())
        .map(|f| if adv.contains(&f) { 0 } else { 1 })
        .collect();
    let screen = correlation_screen(&split.train.features, &party_of, 0.8);
    println!(
        "  correlation screen (|r| > 0.8): {} risky cross-party pairs, drop candidates {:?}",
        screen.risky_pairs.len(),
        screen.drop_candidates
    );

    // --- The attack with and without rounding ------------------------
    let model = LogisticRegression::fit(&split.train, &LrConfig::default());
    let esa = EqualitySolvingAttack::new(&model, &adv, &target);
    let x_adv = split.prediction.features.select_columns(&adv).unwrap();
    let truth = split.prediction.features.select_columns(&target).unwrap();
    let conf = model.predict_proba(&split.prediction.features);

    let engine = AttackEngine::new();
    let clean = engine
        .run(&esa, &QueryBatch::new(x_adv.clone(), conf.clone()))
        .estimates
        .map(|v| v.clamp(0.0, 1.0));
    println!(
        "\nESA without defense : mse = {:.4}",
        metrics::mse_per_feature(&clean, &truth)
    );
    for defense in [RoundingDefense::fine(), RoundingDefense::coarse()] {
        let rounded = defense.round_matrix(&conf);
        let est = engine
            .run(&esa, &QueryBatch::new(x_adv.clone(), rounded))
            .estimates
            .map(|v| v.clamp(0.0, 1.0));
        println!(
            "ESA with rounding b={} : mse = {:.4}",
            defense.digits,
            metrics::mse_per_feature(&est, &truth)
        );
    }

    // --- Post-processing: simulated-enclave verification -------------
    let verifier = LeakageVerifier::new(&model, &adv, &target, 0.02);
    let mut withheld = 0;
    let n_check = split.prediction.n_samples().min(100);
    for i in 0..n_check {
        let xa: Vec<f64> = adv.iter().map(|&f| split.prediction.sample(i)[f]).collect();
        let xt: Vec<f64> = target
            .iter()
            .map(|&f| split.prediction.sample(i)[f])
            .collect();
        if matches!(verifier.check(&xa, &xt, conf.row(i)), Verdict::Withheld(_)) {
            withheld += 1;
        }
    }
    println!(
        "\nenclave verification: {withheld}/{n_check} prediction outputs withheld \
         (reconstruction within 0.02 of a private value)"
    );
}
