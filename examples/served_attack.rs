//! The paper's threat model, end to end over a real socket — as one
//! campaign: `OracleSpec::Served` makes the session spawn a real
//! `fia-serve` prediction service (ephemeral port, two backend
//! replicas, released-score cache) and mount ESA by *querying the
//! service*, exactly how the adversary of Luo et al. accumulates its
//! `(x_adv, v)` corpus in production. The report says what the campaign
//! cost the deployment.
//!
//! ```sh
//! cargo run --release --example served_attack
//! ```

use fia::campaign::{
    AttackSpec, Campaign, CampaignEvent, OracleSpec, PartitionSpec, ScenarioSpec, ServedConfig,
};
use fia::data::PaperDataset;
use std::time::Duration;

fn main() {
    // 1. The scenario: drive-diagnosis stand-in (11 classes), a random
    //    20% of features held by the passive target party, served over
    //    TCP. `round_cost` simulates the secure-computation round trip
    //    a real deployment pays per joint prediction; the coalescer
    //    amortizes it, two replicas shard the stored prediction set and
    //    pay it concurrently, and the released-score cache answers
    //    repeated queries without paying it at all.
    let scenario = ScenarioSpec::paper(PaperDataset::DriveDiagnosis)
        .with_scale(0.01)
        .with_partition(PartitionSpec::two_block_random(0.2))
        .with_oracle(OracleSpec::Served(ServedConfig {
            replicas: 2,
            cache_capacity: 8192,
            round_cost: Duration::from_micros(200),
            ..ServedConfig::default()
        }))
        .with_seed(42)
        .build();
    println!(
        "scenario {}: {}",
        scenario.fingerprint(),
        scenario.description()
    );

    // 2. The campaign session: the server is spawned when the session
    //    first needs it, and the adversary accumulates confidence
    //    vectors in rounds of 64 queries over the wire.
    let mut campaign = Campaign::new(scenario)
        .with_attack(AttackSpec::esa())
        .with_chunk(64);
    let mut observer = |e: &CampaignEvent| match e {
        CampaignEvent::Started { rows_planned, .. } => {
            println!("accumulating {rows_planned} rows over the wire…");
        }
        CampaignEvent::AttackDone {
            attack, rows, mse, ..
        } => {
            println!("{attack}: reconstructed {rows} target rows, per-feature MSE = {mse:.3e}");
        }
        _ => {}
    };
    let report = campaign.run(&mut observer).expect("campaign over the wire");

    // 3. What the campaign cost the deployment, from the report.
    println!(
        "campaign cost: {} queries / {} rows ({} cache-served, {} computed)",
        report.cost.queries,
        report.cost.rows,
        report.cost.cached_rows,
        report.cost.computed_rows()
    );

    // 4. A second campaign over the same rows: the released-score cache
    //    re-releases the first-released bytes, so the repeat run costs
    //    the deployment no joint rounds and teaches the adversary
    //    nothing new.
    let rerun = campaign
        .rerun(&mut fia::campaign::NullObserver)
        .expect("warm replay");
    println!(
        "repeat campaign: {} of {} rows cache-served ({} recomputed), estimates unchanged: {}",
        rerun.cost.cached_rows,
        rerun.cost.rows,
        rerun.cost.computed_rows(),
        rerun.attack("esa").unwrap().estimates == report.attack("esa").unwrap().estimates
    );

    // 5. What the server saw, then tear it down.
    let m = campaign.server_metrics().expect("served scenario");
    println!(
        "server: {} requests in {} rounds (mean fill {:.2}), p50 {:.0}µs / p99 {:.0}µs",
        m.requests, m.rounds, m.mean_batch_fill, m.p50_latency_us, m.p99_latency_us
    );
    println!(
        "pool: rounds per replica {:?}, cache hit rate {:.1}%",
        m.replica_rounds,
        100.0 * m.cache_hit_rate()
    );
    campaign.shutdown();
}
