//! The paper's threat model, end to end over a real socket: deploy the
//! vertical FL model behind the `fia-serve` prediction service (bound to
//! an ephemeral port), then mount ESA from the active party's seat by
//! *querying the service* — exactly how the adversary of Luo et al.
//! accumulates its `(x_adv, v)` corpus in production.
//!
//! ```sh
//! cargo run --release --example served_attack
//! ```

use fia::attacks::{run_over_oracle, AttackEngine, EqualitySolvingAttack};
use fia::data::{PaperDataset, SplitSpec};
use fia::defense::DefensePipeline;
use fia::models::{LogisticRegression, LrConfig};
use fia::serve::{PredictionServer, RemoteOracle, ServeConfig};
use fia::vfl::{ThreatModel, VerticalPartition, VflSystem};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // 1. Train and deploy: drive-diagnosis stand-in (11 classes), a
    //    random 20% of features held by the passive target party.
    let dataset = PaperDataset::DriveDiagnosis.generate(0.01, 42);
    let split = dataset.split(&SplitSpec::paper_default(), 42);
    let partition = VerticalPartition::two_block_random(dataset.n_features(), 0.2, 42);
    let model = LogisticRegression::fit(&split.train, &LrConfig::default());
    let system = Arc::new(VflSystem::from_global(
        model,
        partition,
        &split.prediction.features,
    ));

    // 2. Serve it. Port 0 asks the kernel for an ephemeral port — the
    //    handle reports where the server actually landed. `round_cost`
    //    simulates the secure-computation round trip a real deployment
    //    pays per joint prediction; the coalescer amortizes it, two
    //    backend replicas shard the stored prediction set and pay it
    //    concurrently, and the released-score cache answers repeated
    //    queries without paying it at all.
    let server = PredictionServer::spawn(
        Arc::clone(&system),
        Arc::new(DefensePipeline::new()),
        ServeConfig {
            replicas: 2,
            cache_capacity: 8192,
            round_cost: Duration::from_micros(200),
            ..ServeConfig::default()
        },
    )
    .expect("bind ephemeral port");
    println!("serving VFL predictions on {}", server.addr());

    // 3. The adversary connects and learns the deployment's shape.
    let mut oracle = RemoteOracle::connect(server.addr()).expect("connect");
    let info = oracle.info().clone();
    println!(
        "deployment: {} samples, {} features, {} classes, party widths {:?}",
        info.n_samples, info.n_features, info.n_classes, info.party_widths
    );

    // 4. Mount ESA over the wire: accumulate confidence vectors in
    //    rounds of 64 queries, then invert them. The adversary's own
    //    feature values come from its local table.
    let threat = ThreatModel::active_only();
    let (adv_indices, target_indices) = threat.feature_split(system.partition());
    let x_adv = split
        .prediction
        .features
        .select_columns(&adv_indices)
        .unwrap();
    let indices: Vec<usize> = (0..info.n_samples).collect();

    let attack = EqualitySolvingAttack::new(system.model(), &adv_indices, &target_indices);
    println!(
        "ESA over the wire: {} unknowns, {} equations, exact recovery expected: {}",
        target_indices.len(),
        attack.n_equations(),
        attack.exact_recovery_expected()
    );
    let result = run_over_oracle(
        &AttackEngine::new(),
        &attack,
        &mut oracle,
        &x_adv,
        &indices,
        64,
    )
    .expect("remote replay");

    let truth = split
        .prediction
        .features
        .select_columns(&target_indices)
        .unwrap();
    println!(
        "reconstructed {} target rows, per-feature MSE = {:.3e}",
        result.n_queries(),
        result.mse_against(&truth)
    );

    // 5. A second campaign over the same rows: the cache re-releases
    //    the first-released bytes, so the repeat run costs the
    //    deployment nothing and teaches the adversary nothing new.
    let mut repeat = RemoteOracle::connect(server.addr()).expect("connect");
    let rerun = run_over_oracle(
        &AttackEngine::new(),
        &attack,
        &mut repeat,
        &x_adv,
        &indices,
        64,
    )
    .expect("warm replay");
    let cost = repeat.cost();
    println!(
        "repeat campaign: {} of {} rows cache-served ({} recomputed), MSE unchanged: {}",
        cost.cached_rows,
        cost.rows,
        cost.computed_rows(),
        rerun.estimates == result.estimates
    );

    // 6. What the server saw.
    let m = oracle.server_metrics().expect("metrics");
    println!(
        "server: {} requests in {} rounds (mean fill {:.2}), p50 {:.0}µs / p99 {:.0}µs",
        m.requests, m.rounds, m.mean_batch_fill, m.p50_latency_us, m.p99_latency_us
    );
    println!(
        "pool: rounds per replica {:?}, cache hit rate {:.1}%",
        m.replica_rounds,
        100.0 * m.cache_hit_rate()
    );
    server.shutdown();
}
