//! The whole telemetry surface in one run: a served campaign streams
//! its events to a JSONL sink, the session's tracer records a span tree
//! (run → chunks → attacks), and the live prediction server answers a
//! Prometheus-style `MetricsText` scrape that covers serve, campaign
//! and kernel instruments in one exposition. Everything lands under
//! `target/observability/` — the same three artifacts a real deployment
//! would ship to its log pipeline and metrics scraper.
//!
//! ```sh
//! cargo run --release --example observability
//! ```

use fia::campaign::{
    AttackSpec, Campaign, EventLog, OracleSpec, PartitionSpec, ScenarioSpec, ServedConfig,
};
use fia::data::PaperDataset;
use std::fs;
use std::path::Path;

/// Pulls `"key":N` out of a hand-rolled JSONL span line.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)? + needle.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    // 1. A served scenario: the campaign spawns a real prediction
    //    server (two replicas, released-score cache) and queries it
    //    over TCP — so the scrape below is a genuine over-the-wire one.
    let scenario = ScenarioSpec::paper(PaperDataset::DriveDiagnosis)
        .with_scale(0.01)
        .with_partition(PartitionSpec::two_block_random(0.2))
        .with_oracle(OracleSpec::Served(ServedConfig {
            replicas: 2,
            cache_capacity: 8192,
            ..ServedConfig::default()
        }))
        .with_seed(42)
        .build();
    println!("scenario {}", scenario.fingerprint());

    // 2. Run with an EventLog observer: every Started / ChunkDone /
    //    AttackDone / Finished event is collected, each ChunkDone
    //    carrying the chunk's wall-clock duration and the run's
    //    cumulative elapsed time.
    let mut campaign = Campaign::new(scenario)
        .with_attack(AttackSpec::esa())
        .with_chunk(64);
    let mut log = EventLog::new();
    let report = campaign.run(&mut log).expect("served campaign");
    println!(
        "campaign {}: {} rows for {} queries, ESA mse {:.3e}",
        report.outcome.name(),
        report.rows_done,
        report.cost.queries,
        report.attack("esa").unwrap().mse
    );

    // 3. The three artifacts.
    let dir = Path::new("target/observability");
    fs::create_dir_all(dir).expect("create target/observability");

    // 3a. The event stream, one JSON object per line.
    let events = log.to_jsonl();
    fs::write(dir.join("campaign_events.jsonl"), &events).expect("write events");

    // 3b. The span trace: a `campaign.run` root, one `campaign.chunk`
    //     child per oracle round (rows, queries, cache-served rows),
    //     one `campaign.attack` child per attack.
    let trace = campaign.trace_jsonl();
    fs::write(dir.join("campaign_trace.jsonl"), &trace).expect("write trace");

    // 3c. A live Prometheus-style scrape over the wire. The server
    //     merges its own registry with the process-global one, so one
    //     exposition covers serve counters, campaign counters and the
    //     fia-linalg gemm kernel counters.
    let metrics = campaign.server_metrics_text().expect("served scrape");
    fs::write(dir.join("metrics.txt"), &metrics).expect("write metrics");

    // 3d. The merged distributed trace: client spans followed by server
    //     spans, one id space (server ids start at 1 << 32). Every
    //     server `serve.request` span's parent is the client-side
    //     `campaign.chunk` that caused it — assert that here so the
    //     artifact is known-good before anything downstream reads it.
    let merged = report.merged_trace_jsonl();
    let client_ids: std::collections::HashSet<u64> = merged
        .lines()
        .filter_map(|l| field_u64(l, "id"))
        .filter(|&id| id < fia::serve::SERVER_SPAN_ID_BASE)
        .collect();
    let mut cross_links = 0usize;
    for line in merged
        .lines()
        .filter(|l| l.contains("\"name\":\"serve.request\""))
    {
        let parent = field_u64(line, "parent").expect("serve.request has a parent");
        assert!(
            client_ids.contains(&parent),
            "server request span does not resolve to a client span: {line}"
        );
        cross_links += 1;
    }
    assert!(
        cross_links > 0,
        "no cross-process links in the merged trace"
    );
    fs::write(dir.join("merged_trace.jsonl"), &merged).expect("write merged trace");

    // 3e. The server's per-client audit ledger: the defender's view of
    //     this campaign's query stream. Its cost must equal the
    //     client's own meter — the parity the ledger is built around.
    let audit = report.server_audit.as_ref().expect("served audit");
    let tag = report.session_tag.as_deref().expect("declared tag");
    let entry = audit.client(tag).expect("ledger entry for this session");
    assert_eq!(entry.cost(), report.cost, "ledger/meter parity");
    let mut audit_txt = format!("# audit ledger — n_samples {}\n", audit.n_samples);
    for c in &audit.clients {
        audit_txt.push_str(&format!(
            "client={} queries={} rows={} cached={} distinct={} repeats={} feature_queries={} rate={:.2}/s flags=[{}]\n",
            c.client,
            c.queries,
            c.rows,
            c.cached_rows,
            c.distinct_rows,
            c.repeat_rows,
            c.feature_queries,
            c.window_rate_rps,
            c.flags.join(","),
        ));
    }
    fs::write(dir.join("audit_ledger.txt"), &audit_txt).expect("write audit");
    println!(
        "merged trace: {} spans, {} cross-process request links; audit: {} ledger entries, flags [{}]",
        merged.lines().count(),
        cross_links,
        audit.clients.len(),
        entry.flags.join(","),
    );

    println!(
        "wrote {} events, {} spans, {} metric samples under target/observability/",
        events.lines().count(),
        trace.lines().count(),
        metrics
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
            .count()
    );
    // The report itself carries the run's telemetry delta, so an
    // archived report is self-describing about what it cost.
    println!(
        "report telemetry delta: {} instruments",
        report.telemetry.entries.len()
    );
    campaign.shutdown();
}
