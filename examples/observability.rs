//! The whole telemetry surface in one run: a served campaign streams
//! its events to a JSONL sink, the session's tracer records a span tree
//! (run → chunks → attacks), and the live prediction server answers a
//! Prometheus-style `MetricsText` scrape that covers serve, campaign
//! and kernel instruments in one exposition. Everything lands under
//! `target/observability/` — the same three artifacts a real deployment
//! would ship to its log pipeline and metrics scraper.
//!
//! ```sh
//! cargo run --release --example observability
//! ```

use fia::campaign::{
    AttackSpec, Campaign, EventLog, OracleSpec, PartitionSpec, ScenarioSpec, ServedConfig,
};
use fia::data::PaperDataset;
use std::fs;
use std::path::Path;

fn main() {
    // 1. A served scenario: the campaign spawns a real prediction
    //    server (two replicas, released-score cache) and queries it
    //    over TCP — so the scrape below is a genuine over-the-wire one.
    let scenario = ScenarioSpec::paper(PaperDataset::DriveDiagnosis)
        .with_scale(0.01)
        .with_partition(PartitionSpec::two_block_random(0.2))
        .with_oracle(OracleSpec::Served(ServedConfig {
            replicas: 2,
            cache_capacity: 8192,
            ..ServedConfig::default()
        }))
        .with_seed(42)
        .build();
    println!("scenario {}", scenario.fingerprint());

    // 2. Run with an EventLog observer: every Started / ChunkDone /
    //    AttackDone / Finished event is collected, each ChunkDone
    //    carrying the chunk's wall-clock duration and the run's
    //    cumulative elapsed time.
    let mut campaign = Campaign::new(scenario)
        .with_attack(AttackSpec::esa())
        .with_chunk(64);
    let mut log = EventLog::new();
    let report = campaign.run(&mut log).expect("served campaign");
    println!(
        "campaign {}: {} rows for {} queries, ESA mse {:.3e}",
        report.outcome.name(),
        report.rows_done,
        report.cost.queries,
        report.attack("esa").unwrap().mse
    );

    // 3. The three artifacts.
    let dir = Path::new("target/observability");
    fs::create_dir_all(dir).expect("create target/observability");

    // 3a. The event stream, one JSON object per line.
    let events = log.to_jsonl();
    fs::write(dir.join("campaign_events.jsonl"), &events).expect("write events");

    // 3b. The span trace: a `campaign.run` root, one `campaign.chunk`
    //     child per oracle round (rows, queries, cache-served rows),
    //     one `campaign.attack` child per attack.
    let trace = campaign.trace_jsonl();
    fs::write(dir.join("campaign_trace.jsonl"), &trace).expect("write trace");

    // 3c. A live Prometheus-style scrape over the wire. The server
    //     merges its own registry with the process-global one, so one
    //     exposition covers serve counters, campaign counters and the
    //     fia-linalg gemm kernel counters.
    let metrics = campaign.server_metrics_text().expect("served scrape");
    fs::write(dir.join("metrics.txt"), &metrics).expect("write metrics");

    println!(
        "wrote {} events, {} spans, {} metric samples under target/observability/",
        events.lines().count(),
        trace.lines().count(),
        metrics
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
            .count()
    );
    // The report itself carries the run's telemetry delta, so an
    // archived report is self-describing about what it cost.
    println!(
        "report telemetry delta: {} instruments",
        report.telemetry.entries.len()
    );
    campaign.shutdown();
}
