//! `top` for the prediction service: polls the live `MetricsText` and
//! `AuditReport` wire ops and renders a per-client table — queries,
//! rows, cache-released rows, distinct-row coverage, repeats, ad-hoc
//! feature traffic, trailing query rate, and the ledger's probe-shape
//! flags. Point it at a running server, or let it spawn a demo
//! deployment plus two synthetic clients (one sample-space sweeper, one
//! ad-hoc feature prober) so the table has something to show.
//!
//! It also renders the campaign service's job table: the self-hosted
//! demo spawns an in-process `fia-campaignd` and submits two small
//! campaigns so the jobs panel shows live chunk/row/query progress, or
//! point `FIA_TOP_JOBS_ADDR` at a running daemon's endpoint.
//!
//! ```sh
//! cargo run --release --example fia_top                  # self-hosted demo
//! FIA_TOP_ADDR=127.0.0.1:7070 cargo run --example fia_top  # watch a server
//! FIA_TOP_JOBS_ADDR=127.0.0.1:7071 ...                      # watch a daemon
//! FIA_TOP_FRAMES=10 FIA_TOP_INTERVAL_MS=1000 ...           # pacing
//! ```

use fia::campaignd::{
    start, CampaignClient, DaemonConfig, JobAttack, JobDefense, JobModel, JobOracle, JobSpec,
};
use fia::data::PaperDataset;
use fia::defense::DefensePipeline;
use fia::linalg::Matrix;
use fia::models::LogisticRegression;
use fia::serve::{PredictionServer, RemoteOracle, ServeConfig, ServerHandle};
use fia::vfl::{VerticalPartition, VflSystem};
use std::io::IsTerminal;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const N: usize = 96;
const D: usize = 8;
const C: usize = 5;

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A small deterministic LR deployment for the self-hosted demo.
fn demo_server() -> ServerHandle {
    let w = Matrix::from_fn(D, C, |i, j| ((1 + i * C + j) as f64).sin());
    let model = LogisticRegression::from_parameters(w, vec![0.0; C], C);
    let global = Matrix::from_fn(N, D, |i, j| 0.05 + 0.9 * ((i * D + j) as f64).cos().abs());
    let partition =
        VerticalPartition::from_assignments(vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]], D);
    let system = Arc::new(VflSystem::from_global(model, partition, &global));
    PredictionServer::spawn(
        system,
        Arc::new(DefensePipeline::new()),
        ServeConfig {
            replicas: 2,
            cache_capacity: 2 * N,
            ..ServeConfig::default()
        },
    )
    .expect("bind demo server")
}

/// Two synthetic clients driving the demo server until `stop` flips:
/// `sweeper` re-walks the stored sample space (coverage + repeats),
/// `prober` issues ad-hoc feature queries (feature-burst shape).
fn demo_traffic(
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
) -> Vec<std::thread::JoinHandle<()>> {
    let sweep_stop = Arc::clone(&stop);
    let sweeper = std::thread::spawn(move || {
        let mut oracle = RemoteOracle::connect(addr).expect("sweeper connect");
        oracle.declare_session("sweeper").expect("declare");
        let mut at = 0usize;
        while !sweep_stop.load(Ordering::Relaxed) {
            let indices: Vec<usize> = (0..16).map(|k| (at + k) % N).collect();
            at = (at + 16) % N;
            if oracle.predict_batch(&indices).is_err() {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    });
    let probe_stop = stop;
    let prober = std::thread::spawn(move || {
        let mut oracle = RemoteOracle::connect(addr).expect("prober connect");
        oracle.declare_session("prober").expect("declare");
        let mut tick = 0u64;
        while !probe_stop.load(Ordering::Relaxed) {
            let phase = tick as f64 / 7.0;
            tick += 1;
            let slices = vec![
                Matrix::from_fn(3, 4, |i, j| ((i + j) as f64 + phase).sin().abs()),
                Matrix::from_fn(3, 4, |i, j| ((i * j) as f64 - phase).cos().abs()),
            ];
            if oracle.predict_features(&slices).is_err() {
                break;
            }
            std::thread::sleep(Duration::from_millis(35));
        }
    });
    vec![sweeper, prober]
}

/// Spawns a demo campaign daemon and submits two small throttled
/// campaigns (one in-process oracle, one shared served deployment) so
/// the jobs panel has live progress to show across frames.
fn demo_daemon(dir: &std::path::Path) -> fia::campaignd::DaemonHandle {
    let daemon = start(DaemonConfig::new(dir)).expect("spawn demo daemon");
    let mut client = CampaignClient::connect(daemon.addr()).expect("connect daemon");
    let mut spec = JobSpec {
        dataset: PaperDataset::CreditCard,
        scale: 0.005,
        target_fraction: 0.3,
        seed: 41,
        model: JobModel::Logistic,
        defense: JobDefense::RoundingFine,
        attacks: vec![JobAttack::Esa],
        max_queries: None,
        max_rows: None,
        chunk: 8,
        oracle: JobOracle::InProcess,
        throttle_ms: 120,
    };
    client.submit(&spec).expect("submit in-process job");
    spec.seed = 42;
    spec.defense = JobDefense::None;
    spec.oracle = JobOracle::Shared {
        replicas: 1,
        cache_capacity: 0,
    };
    client.submit(&spec).expect("submit served job");
    daemon
}

/// Renders the daemon's job table for one frame.
fn print_jobs(client: &mut CampaignClient) {
    let rows = match client.list() {
        Ok(rows) => rows,
        Err(e) => {
            println!("jobs: daemon unavailable ({e})");
            return;
        }
    };
    println!(
        "{:<4} {:<9} {:>6} {:>11} {:>8} {:>7} {:>7}  FINGERPRINT",
        "JOB", "STATE", "CHUNKS", "ROWS", "QUERIES", "RESUMES", "EVENTS",
    );
    for r in &rows {
        let fp_end = r.fingerprint.len().min(12);
        println!(
            "{:<4} {:<9} {:>6} {:>5}/{:<5} {:>8} {:>7} {:>7}  {}{}",
            r.id,
            r.state.name(),
            r.chunks_done,
            r.rows_done,
            r.rows_planned,
            r.queries,
            r.resumes,
            r.events,
            &r.fingerprint[..fp_end],
            if r.detail.is_empty() {
                String::new()
            } else {
                format!("  ({})", r.detail)
            },
        );
    }
    if rows.is_empty() {
        println!("(no jobs submitted yet)");
    }
}

fn main() {
    let frames = env_u64("FIA_TOP_FRAMES", 5);
    let interval = Duration::from_millis(env_u64("FIA_TOP_INTERVAL_MS", 500));

    // Resolve the target: an external server, or a self-hosted demo.
    let external = std::env::var("FIA_TOP_ADDR").ok();
    let (server, addr) = match &external {
        Some(a) => (None, a.parse().expect("FIA_TOP_ADDR parses")),
        None => {
            let s = demo_server();
            let addr = s.addr();
            (Some(s), addr)
        }
    };
    let stop = Arc::new(AtomicBool::new(false));
    let traffic = if server.is_some() {
        demo_traffic(addr, Arc::clone(&stop))
    } else {
        Vec::new()
    };

    // Resolve the campaign daemon: an external endpoint, or (in demo
    // mode) a self-hosted daemon running two live campaigns.
    let external_jobs = std::env::var("FIA_TOP_JOBS_ADDR").ok();
    let demo_dir = std::env::temp_dir().join(format!("fia-top-demo-{}", std::process::id()));
    let daemon = match (&external_jobs, &external) {
        (None, None) => Some(demo_daemon(&demo_dir)),
        _ => None,
    };
    let mut jobs_client = match (&external_jobs, &daemon) {
        (Some(a), _) => CampaignClient::connect(a.as_str()).ok(),
        (None, Some(d)) => CampaignClient::connect(d.addr()).ok(),
        (None, None) => None,
    };

    let mut oracle = RemoteOracle::connect(addr).expect("connect");
    let live = std::io::stdout().is_terminal();
    for frame in 1..=frames {
        std::thread::sleep(interval);
        let m = oracle.server_metrics().expect("metrics");
        let audit = oracle.audit_report().expect("audit");
        if live {
            // In a terminal, redraw in place like `top`.
            print!("\x1b[2J\x1b[H");
        }
        println!(
            "fia-top — {addr} — frame {frame}/{frames}  up {:.1}s",
            m.uptime_secs
        );
        println!(
            "server: {} req  {} rows  {} rounds  {} err  cache {}/{}  {:.1} rps  fill {:.2}  conns {}",
            m.requests,
            m.rows,
            m.rounds,
            m.errors,
            m.cache_hits,
            m.cache_hits + m.cache_misses,
            m.throughput_rps,
            m.mean_batch_fill,
            m.open_connections,
        );
        println!(
            "{:<18} {:>8} {:>8} {:>8} {:>9} {:>8} {:>7} {:>8}  FLAGS",
            "CLIENT", "QUERIES", "ROWS", "CACHED", "DISTINCT", "REPEATS", "FEATQ", "RATE/S",
        );
        for c in &audit.clients {
            println!(
                "{:<18} {:>8} {:>8} {:>8} {:>9} {:>8} {:>7} {:>8.2}  {}",
                c.client,
                c.queries,
                c.rows,
                c.cached_rows,
                c.distinct_rows,
                c.repeat_rows,
                c.feature_queries,
                c.window_rate_rps,
                if c.flags.is_empty() {
                    "-".to_string()
                } else {
                    c.flags.join(",")
                },
            );
        }
        if audit.clients.is_empty() {
            println!("(no audited clients yet — is the server's audit ledger enabled?)");
        }
        if let Some(client) = jobs_client.as_mut() {
            println!();
            print_jobs(client);
        }
    }

    stop.store(true, Ordering::Relaxed);
    for t in traffic {
        let _ = t.join();
    }
    if let Some(s) = server {
        s.shutdown();
    }
    if let Some(d) = daemon {
        d.shutdown();
        let _ = std::fs::remove_dir_all(&demo_dir);
    }
}
