//! Training the vertical FL model through the (simulated) secure
//! protocol, then attacking the released model — the complete lifecycle
//! the paper assumes.
//!
//! The parties never exchange raw features during training (the audit
//! ledger proves it); the privacy loss happens *afterwards*, through the
//! released model and the prediction outputs — which is exactly the
//! paper's point.
//!
//! ```sh
//! cargo run --release --example federated_training
//! ```

use fia::attacks::{metrics, AttackEngine, EqualitySolvingAttack, Grna, GrnaConfig, QueryBatch};
use fia::data::{PaperDataset, SplitSpec};
use fia::models::accuracy;
use fia::vfl::{
    train_federated_lr, AdversaryView, FederatedLrConfig, ThreatModel, VerticalPartition, VflSystem,
};

fn main() {
    let dataset = PaperDataset::DriveDiagnosis.generate(0.01, 33);
    let split = dataset.split(&SplitSpec::paper_default(), 33);
    let partition = VerticalPartition::two_block_random(dataset.n_features(), 0.2, 33);

    // --- Federated training: no raw features cross party boundaries ---
    let blocks = partition.split_matrix(&split.train.features);
    let (model, audit) = train_federated_lr(
        &partition,
        &blocks,
        &split.train.labels,
        split.train.n_classes,
        &FederatedLrConfig::default(),
    );
    println!(
        "federated training: {} secure aggregations, {} residual broadcasts, raw features disclosed: {}",
        audit.secure_aggregations, audit.residual_broadcasts, audit.raw_features_disclosed
    );
    println!(
        "released model test accuracy: {:.3}",
        accuracy(&model, &split.test.features, &split.test.labels)
    );

    // --- Deployment: the released model + prediction outputs leak ------
    let system = VflSystem::from_global(model, partition, &split.prediction.features);
    let view = AdversaryView::collect(&system, &ThreatModel::active_only());
    let truth = split
        .prediction
        .features
        .select_columns(&view.target_indices)
        .unwrap();

    let engine = AttackEngine::new();
    let batch = QueryBatch::new(view.x_adv.clone(), view.confidences.clone());
    let esa = EqualitySolvingAttack::new(system.model(), &view.adv_indices, &view.target_indices);
    let est = engine.run(&esa, &batch).estimates;
    println!(
        "\nESA on the federated-trained model: mse = {:.6} (exact expected: {})",
        metrics::mse_per_feature(&est, &truth),
        esa.exact_recovery_expected()
    );

    let grna = Grna::new(
        system.model(),
        &view.adv_indices,
        &view.target_indices,
        GrnaConfig::fast().with_seed(33),
    );
    let generator = grna
        .train(&view.x_adv, &view.confidences)
        .with_infer_seed(1);
    let grna_est = engine.run(&generator, &batch).estimates;
    println!(
        "GRNA on the same model:            mse = {:.6}",
        metrics::mse_per_feature(&grna_est, &truth)
    );
    println!(
        "\nthe training protocol leaked nothing — the *released model and its\n\
         predictions* are what reconstruct the passive party's features."
    );
}
