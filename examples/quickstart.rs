//! Quickstart: describe an attack scenario with the typed builder, run
//! a budgeted campaign against the deployment, and read the report —
//! the whole paper loop (train → deploy → query → invert → evaluate)
//! through the one front-door API.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fia::attacks::{baseline, metrics, GrnaConfig};
use fia::campaign::{
    AttackSpec, Campaign, CampaignEvent, PartitionSpec, QueryBudget, ScenarioSpec,
};
use fia::data::PaperDataset;

fn main() {
    // 1. Describe the scenario: the credit-card stand-in (30 000 × 23,
    //    2 classes) at 2% scale, a random 30% of features held by the
    //    passive target party, a logistic regression trained on the
    //    joint data, queried in-process. Everything hangs off one seed.
    let spec = ScenarioSpec::paper(PaperDataset::CreditCard)
        .with_scale(0.02)
        .with_partition(PartitionSpec::two_block_random(0.3))
        .with_seed(7);
    println!("scenario {}:\n  {}", spec.fingerprint(), spec.describe());

    // 2. Build it: dataset generated and split, model trained, system
    //    deployed. The resolved data side is open for inspection.
    let scenario = spec.clone().build();
    let data = scenario.data();
    println!(
        "  {} — {} train / {} prediction samples, d_target = {}",
        data.name,
        data.train.n_samples(),
        data.n_predictions(),
        data.d_target()
    );
    let truth = data.truth.clone();

    // 3. Run the campaign: accumulate the (x_adv, v) corpus in 64-row
    //    prediction rounds, then mount ESA (individual predictions) and
    //    GRNA (accumulated predictions) over it. Events stream as the
    //    session progresses.
    let mut campaign = Campaign::new(scenario)
        .with_attack(AttackSpec::esa())
        .with_attack(AttackSpec::grna(GrnaConfig::fast().with_seed(7)))
        .with_chunk(64);
    let mut observer = |e: &CampaignEvent| {
        if let CampaignEvent::AttackDone { attack, mse, .. } = e {
            println!("  [event] {attack} finished: mse = {mse:.4}");
        }
    };
    let report = campaign.run(&mut observer).expect("campaign runs");

    // 4. The report is the single artifact: metrics + query cost +
    //    fingerprint + seed, serializable for comparison across runs.
    println!(
        "campaign {}: {} rows in {} queries",
        report.outcome.name(),
        report.cost.rows,
        report.cost.queries
    );
    let rg = baseline::random_guess_uniform(truth.rows(), truth.cols(), 1);
    println!("random: mse = {:.4}", metrics::mse_per_feature(&rg, &truth));
    println!(
        "upper bound (Eqn 15) on ESA mse: {:.4}",
        metrics::esa_upper_bound(&truth)
    );

    // 5. The adversary is query-limited: the same scenario spec under a
    //    hard 200-row budget stops at exactly 200 rows and still
    //    returns partial per-feature results.
    let mut budgeted = Campaign::new(spec.build())
        .with_attack(AttackSpec::esa())
        .with_budget(QueryBudget::rows(200))
        .with_chunk(64);
    let partial = budgeted.run(&mut fia::campaign::NullObserver).unwrap();
    println!(
        "budgeted campaign: {} after {} of {} rows (ESA over the partial corpus: mse = {:.4})",
        partial.outcome.name(),
        partial.rows_done,
        partial.rows_planned,
        partial.attack("esa").unwrap().mse
    );
}
