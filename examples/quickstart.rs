//! Quickstart: train a vertical FL model, run the prediction protocol,
//! and mount all three attacks from the active party's seat.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fia::attacks::{
    baseline, metrics, AttackEngine, EqualitySolvingAttack, Grna, GrnaConfig, QueryBatch,
};
use fia::data::{PaperDataset, SplitSpec};
use fia::models::{LogisticRegression, LrConfig};
use fia::vfl::{AdversaryView, ThreatModel, VerticalPartition, VflSystem};

fn main() {
    // 1. Data: the credit-card stand-in (30 000 × 23, 2 classes) at 2%
    //    scale, already min-max normalized into (0, 1).
    let dataset = PaperDataset::CreditCard.generate(0.02, 7);
    let split = dataset.split(&SplitSpec::paper_default(), 7);
    println!(
        "dataset: {} — {} train / {} prediction samples, {} features",
        dataset.name,
        split.train.n_samples(),
        split.prediction.n_samples(),
        dataset.n_features()
    );

    // 2. Vertical partition: a random 30% of features belongs to the
    //    passive target party; the active party holds the rest.
    let partition = VerticalPartition::two_block_random(dataset.n_features(), 0.3, 7);

    // 3. Train the joint model (centralized training stands in for the
    //    secure protocol — the adversary receives the final θ either way).
    let model = LogisticRegression::fit(&split.train, &LrConfig::default());

    // 4. Deploy and run the joint prediction protocol: the active party
    //    observes only (its own features, confidence scores).
    let system = VflSystem::from_global(model, partition, &split.prediction.features);
    let threat = ThreatModel::active_only();
    let view = AdversaryView::collect(&system, &threat);
    println!(
        "adversary accumulated {} predictions; d_target = {}",
        view.n_samples(),
        view.d_target()
    );

    // Ground truth, used for evaluation only.
    let truth = split
        .prediction
        .features
        .select_columns(&view.target_indices)
        .unwrap();

    // 5a. Equality solving attack (individual predictions).
    let engine = AttackEngine::new();
    let batch = QueryBatch::new(view.x_adv.clone(), view.confidences.clone());
    let esa = EqualitySolvingAttack::new(system.model(), &view.adv_indices, &view.target_indices);
    let esa_est = engine.run(&esa, &batch).estimates;
    println!(
        "ESA   : mse = {:.4} (exact recovery expected: {})",
        metrics::mse_per_feature(&esa_est, &truth),
        esa.exact_recovery_expected()
    );

    // 5b. Generative regression network attack (accumulated predictions).
    let grna = Grna::new(
        system.model(),
        &view.adv_indices,
        &view.target_indices,
        GrnaConfig::fast().with_seed(7),
    );
    let generator = grna
        .train(&view.x_adv, &view.confidences)
        .with_infer_seed(99);
    let grna_est = engine.run(&generator, &batch).estimates;
    println!(
        "GRNA  : mse = {:.4}",
        metrics::mse_per_feature(&grna_est, &truth)
    );

    // 5c. Random-guess baselines for calibration.
    let rg = baseline::random_guess_uniform(truth.rows(), truth.cols(), 1);
    println!("random: mse = {:.4}", metrics::mse_per_feature(&rg, &truth));
    println!(
        "upper bound (Eqn 15) on ESA mse: {:.4}",
        metrics::esa_upper_bound(&truth)
    );
}
