//! The paper's running example (Figs. 1–2, Examples 1–2): a bank (active
//! party, holding `age` and `income`) collaborates with a FinTech company
//! (passive party, holding `deposit` and `#shopping`).
//!
//! Walks through (a) the path restriction attack on the Fig. 2 decision
//! tree, reproducing Example 2's conclusion, and (b) the equality solving
//! attack on Example 1's 3-class logistic regression.
//!
//! ```sh
//! cargo run --release --example digital_banking
//! ```

use fia::attacks::{EqualitySolvingAttack, PathRestrictionAttack};
use fia::linalg::Matrix;
use fia::models::{DecisionTree, LogisticRegression, PredictProba, TreeNode};
use rand::{rngs::StdRng, SeedableRng};

fn figure2_tree() -> DecisionTree {
    use TreeNode::*;
    // Feature ids: 0 = age, 1 = income, 2 = deposit, 3 = #shopping.
    let nodes = vec![
        Internal {
            feature: 0,
            threshold: 30.0,
        },
        Internal {
            feature: 2,
            threshold: 5.0,
        },
        Internal {
            feature: 3,
            threshold: 6.0,
        },
        Internal {
            feature: 1,
            threshold: 3.0,
        },
        Leaf { label: 1 },
        Leaf { label: 1 },
        Internal {
            feature: 1,
            threshold: 2.0,
        },
        Leaf { label: 2 },
        Leaf { label: 2 },
        Absent,
        Absent,
        Absent,
        Absent,
        Leaf { label: 2 },
        Leaf { label: 1 },
    ];
    DecisionTree::from_nodes(nodes, 4, 3)
}

fn main() {
    // ---- Example 2: path restriction on the Fig. 2 tree -------------
    let tree = figure2_tree();
    let attack = PathRestrictionAttack::new(&tree, &[0, 1], &[2, 3]);
    let x_adv = [25.0, 2.0]; // age 25, income 2K — the bank's own columns
    println!("Fig. 2 tree: {} prediction paths", tree.n_leaves());
    let candidates = attack.restricted_paths(&x_adv, 1);
    println!(
        "after restriction with (age=25, income=2K) and predicted class 1: {} path(s)",
        candidates.len()
    );
    let mut rng = StdRng::seed_from_u64(0);
    let inferred = attack
        .infer(&x_adv, 1, &mut rng)
        .expect("the observed class is consistent");
    for c in &inferred.constraints {
        let feature = ["age", "income", "deposit", "#shopping"][c.feature];
        let op = if c.le { "<=" } else { ">" };
        println!("inferred: {feature} {op} {}", c.threshold);
    }
    // Ground truth: deposit = 8K (> 5K) — the attack's inference holds.
    let tally = attack.evaluate_cbr(&inferred, &[25.0, 2.0, 8.0, 3.0]);
    println!(
        "correct branching rate vs ground truth: {:?}\n",
        tally.rate()
    );

    // ---- Example 1: equality solving on the 3-class LR --------------
    // Θ from the paper, stored feature-major (rows = features).
    let theta = Matrix::from_rows(&[
        vec![0.08, 0.06, 0.01],
        vec![0.0002, 0.0005, 0.0001],
        vec![0.0005, 0.0002, 0.0004],
        vec![0.09, 0.08, 0.05],
    ])
    .unwrap();
    let model = LogisticRegression::from_parameters(theta, vec![0.0; 3], 3);
    let x = [25.0, 2000.0, 8000.0, 3.0];
    let v = model.predict_proba(&Matrix::row_vector(&x));
    println!(
        "Example 1 confidence scores: ({:.3}, {:.3}, {:.3})",
        v[(0, 0)],
        v[(0, 1)],
        v[(0, 2)]
    );
    let esa = EqualitySolvingAttack::new(&model, &[0, 1], &[2, 3]);
    let est = esa.infer(&[25.0, 2000.0], v.row(0));
    println!(
        "ESA reconstruction: deposit = {:.1} (true 8000), #shopping = {:.3} (true 3)",
        est[0], est[1]
    );
    // With the paper's 3-digit rounded v, precision truncation shifts the
    // estimate to ≈ (8011.8, 3.046) — Example 1's reported numbers.
    let est_rounded = esa.infer(&[25.0, 2000.0], &[0.867, 0.084, 0.049]);
    println!(
        "…with rounded scores (paper's numbers): deposit = {:.1}, #shopping = {:.3}",
        est_rounded[0], est_rounded[1]
    );
}
