//! Fig. 4 intuition: why matching confidence scores pins down the target
//! feature's *distribution*.
//!
//! A two-feature linear model `v = σ(θ_adv·x_adv + θ_t·x_t)`: given `v`
//! and `x_adv`, the feasible set for `x_t` is a single point per sample
//! (the green dashed line of Fig. 4 intersected with the adversary's
//! knowledge). GRNA learns this mapping purely from accumulated
//! predictions — no background data distribution — and its inferred
//! values reproduce the target feature's distribution.
//!
//! ```sh
//! cargo run --release --example grna_intuition
//! ```

use fia::attacks::{metrics, Grna, GrnaConfig};
use fia::linalg::Matrix;
use fia::models::{LogisticRegression, PredictProba};
use fia::tensor::standard_normal;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(4);
    let n = 600;

    // x_adv ~ U(0,1); x_t = 0.35 + 0.4·x_adv + noise — correlated blocks,
    // like redundant features in a real table.
    let mut x = Matrix::zeros(n, 2);
    for i in 0..n {
        let a: f64 = rng.gen();
        let t = (0.35 + 0.4 * a + 0.05 * standard_normal(&mut rng)).clamp(0.0, 1.0);
        x[(i, 0)] = a;
        x[(i, 1)] = t;
    }

    // A fixed linear model plays the trained vertical FL model.
    let weights = Matrix::from_rows(&[vec![1.2], vec![2.0]]).unwrap();
    let model = LogisticRegression::from_parameters(weights, vec![-1.4], 2);
    let v = model.predict_proba(&x);

    // The adversary holds feature 0, the target holds feature 1.
    let x_adv = x.select_columns(&[0]).unwrap();
    let truth = x.select_columns(&[1]).unwrap();

    let grna = Grna::new(&model, &[0], &[1], GrnaConfig::fast().with_seed(4));
    let generator = grna.train(&x_adv, &v);
    let est = generator.infer(&x_adv, 11);

    let mean = |m: &Matrix| m.as_slice().iter().sum::<f64>() / m.as_slice().len() as f64;
    let var = |m: &Matrix| {
        let mu = mean(m);
        m.as_slice()
            .iter()
            .map(|&v| (v - mu) * (v - mu))
            .sum::<f64>()
            / m.as_slice().len() as f64
    };
    println!(
        "truth    : mean = {:.3}, var = {:.4}",
        mean(&truth),
        var(&truth)
    );
    println!(
        "inferred : mean = {:.3}, var = {:.4}",
        mean(&est),
        var(&est)
    );
    println!(
        "mse = {:.5} (vs random-guess ≈ {:.5})",
        metrics::mse_per_feature(&est, &truth),
        metrics::mse_per_feature(
            &fia::attacks::baseline::random_guess_uniform(n, 1, 2),
            &truth
        )
    );
    let corr = fia::linalg::vecops::pearson(est.as_slice(), truth.as_slice());
    println!("pearson(inferred, truth) = {corr:.3}");

    // A small ASCII scatter: inferred vs truth deciles.
    println!("\ninferred vs truth (deciles of truth → mean inferred):");
    let mut buckets = [(0.0f64, 0usize); 10];
    for i in 0..n {
        let b = ((truth[(i, 0)] * 10.0) as usize).min(9);
        buckets[b].0 += est[(i, 0)];
        buckets[b].1 += 1;
    }
    for (b, (sum, count)) in buckets.iter().enumerate() {
        if *count == 0 {
            continue;
        }
        let avg = sum / *count as f64;
        let bar = "#".repeat((avg * 40.0) as usize);
        println!(
            "truth {:.1}-{:.1} | {bar} {avg:.2}",
            b as f64 / 10.0,
            (b + 1) as f64 / 10.0
        );
    }
}
