//! Running the attack suite on your own CSV data.
//!
//! Writes a small CSV to a temp file, loads it back through
//! `fia::data::io`, normalizes it, and mounts ESA — the workflow a
//! practitioner auditing a real vertical-FL deployment would follow.
//!
//! ```sh
//! cargo run --release --example csv_attack
//! ```

use fia::attacks::{metrics, AttackEngine, EqualitySolvingAttack, QueryBatch};
use fia::data::io::{read_csv, write_csv};
use fia::data::{normalize_dataset, PaperDataset};
use fia::models::{LogisticRegression, LrConfig, PredictProba};
use std::io::BufReader;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Stand in for "your data": export one of the registry datasets to
    // CSV, as a user would supply.
    let source = PaperDataset::DriveDiagnosis.generate(0.005, 17);
    let path = std::env::temp_dir().join("fia_example_drive.csv");
    {
        let file = std::fs::File::create(&path)?;
        write_csv(&source, file)?;
    }
    println!("wrote {} rows to {}", source.n_samples(), path.display());

    // Load it back: any CSV with a header, numeric features and an
    // integer label column works here.
    let file = std::fs::File::open(&path)?;
    let imported = read_csv(BufReader::new(file), "my-data", "label")?;
    println!(
        "loaded {} samples × {} features, {} classes (raw label values {:?}…)",
        imported.dataset.n_samples(),
        imported.dataset.n_features(),
        imported.dataset.n_classes,
        &imported.label_values[..imported.label_values.len().min(4)],
    );

    // Normalize into (0, 1) — required by the attack math.
    let (data, _scaler) = normalize_dataset(&imported.dataset);

    // Train the joint model and audit: how much would the first 10
    // columns' owner leak to a coalition holding the rest?
    let model = LogisticRegression::fit(&data, &LrConfig::default());
    let target: Vec<usize> = (0..10).collect();
    let adv: Vec<usize> = (10..data.n_features()).collect();
    let attack = EqualitySolvingAttack::new(&model, &adv, &target);
    println!(
        "audit: {} equations vs {} unknown features → exact recovery expected: {}",
        attack.n_equations(),
        target.len(),
        attack.exact_recovery_expected()
    );

    let x_adv = data.features.select_columns(&adv)?;
    let truth = data.features.select_columns(&target)?;
    let conf = model.predict_proba(&data.features);
    let inferred = AttackEngine::new()
        .run(&attack, &QueryBatch::new(x_adv.clone(), conf.clone()))
        .estimates;
    println!(
        "reconstruction MSE per feature: {:.6} (upper bound {:.4})",
        metrics::mse_per_feature(&inferred, &truth),
        metrics::esa_upper_bound(&truth)
    );

    std::fs::remove_file(&path).ok();
    Ok(())
}
